package splitfs

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"chipmunk/internal/bugs"
	"chipmunk/internal/fs/memfs"
	"chipmunk/internal/persist"
	"chipmunk/internal/pmem"
	"chipmunk/internal/vfs"
)

const testDevSize = 4 << 20

func newSplit(t *testing.T, set bugs.Set) (*FS, *pmem.Device) {
	t.Helper()
	dev := pmem.NewDevice(testDevSize)
	f := New(persist.New(dev), set)
	if err := f.Mkfs(); err != nil {
		t.Fatal(err)
	}
	return f, dev
}

func crashMount(t *testing.T, dev *pmem.Device, set bugs.Set) *FS {
	t.Helper()
	f := New(persist.New(pmem.FromImage(dev.CrashImage())), set)
	if err := f.Mount(); err != nil {
		t.Fatalf("crash mount: %v", err)
	}
	return f
}

func readFile(t *testing.T, f vfs.FS, path string) []byte {
	t.Helper()
	st, err := f.Stat(path)
	if err != nil {
		t.Fatalf("stat %s: %v", path, err)
	}
	fd, err := f.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close(fd)
	buf := make([]byte, st.Size)
	n, err := f.Pread(fd, buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	return buf[:n]
}

func TestSynchronousWithoutFsync(t *testing.T) {
	// Unlike raw ext4-DAX, strict SplitFS makes ops durable at return.
	f, dev := newSplit(t, bugs.None())
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("durable without fsync"), 0)
	f.Mkdir("/d")
	f.Rename("/a", "/d/b")

	f2 := crashMount(t, dev, bugs.None())
	if got := readFile(t, f2, "/d/b"); string(got) != "durable without fsync" {
		t.Fatalf("data = %q", got)
	}
	if _, err := f2.Stat("/a"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("old name survived")
	}
}

func TestRelinkAndContinue(t *testing.T) {
	f, dev := newSplit(t, bugs.None())
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("part1-"), 0)
	if err := f.Sync(); err != nil { // relink
		t.Fatal(err)
	}
	f.Pwrite(fd, []byte("part2"), 6)

	f2 := crashMount(t, dev, bugs.None())
	if got := readFile(t, f2, "/a"); string(got) != "part1-part2" {
		t.Fatalf("data = %q", got)
	}
}

func TestManyOpsLogPressure(t *testing.T) {
	f, dev := newSplit(t, bugs.None())
	for i := 0; i < 40; i++ {
		name := string([]byte{'/', 'a' + byte(i%26), '0' + byte(i/26)})
		if _, err := f.Create(name); err != nil && !errors.Is(err, vfs.ErrExist) {
			t.Fatal(err)
		}
		if err := f.Unlink(name); err != nil {
			t.Fatal(err)
		}
	}
	f.Create("/keep")
	f2 := crashMount(t, dev, bugs.None())
	if _, err := f2.Stat("/keep"); err != nil {
		t.Fatal(err)
	}
	ents, _ := f2.ReadDir("/")
	if len(ents) != 1 {
		t.Fatalf("entries = %v", ents)
	}
}

func TestBug21MetadataOpLost(t *testing.T) {
	f, dev := newSplit(t, bugs.Of(bugs.SplitfsOplogUnfenced))
	f.Mkdir("/d") // record flushed but not fenced
	f2 := crashMount(t, dev, bugs.None())
	if _, err := f2.Stat("/d"); err == nil {
		t.Fatal("bug 21: unfenced metadata record survived the crash")
	}
}

func TestBug24OpSilentlyDropped(t *testing.T) {
	f, dev := newSplit(t, bugs.Of(bugs.SplitfsTailBeforeCsum))
	f.Mkdir("/d") // payload never flushed; sealed header is durable
	f2 := crashMount(t, dev, bugs.None())
	if _, err := f2.Stat("/d"); err == nil {
		t.Fatal("bug 24: record with unflushed payload replayed successfully")
	}
}

func TestBug25RenameBothNames(t *testing.T) {
	f, dev := newSplit(t, bugs.Of(bugs.SplitfsRenameOldSurvives))
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("x"), 0)
	f.Rename("/a", "/b") // delete-old deferred

	f2 := crashMount(t, dev, bugs.None())
	_, errA := f2.Stat("/a")
	_, errB := f2.Stat("/b")
	if errA != nil || errB != nil {
		t.Fatalf("bug 25 should leave both names: /a=%v /b=%v", errA, errB)
	}
	// Once another op flushes the deferred record, the state converges.
	f.Create("/later")
	f3 := crashMount(t, dev, bugs.None())
	if _, err := f3.Stat("/a"); err == nil {
		t.Fatal("deferred delete record should have landed")
	}
}

func TestBug22TwoFDStageClobber(t *testing.T) {
	f, dev := newSplit(t, bugs.Of(bugs.SplitfsStagePerFD))
	fd1, _ := f.Create("/a")
	fd2, _ := f.Open("/a")
	f.Pwrite(fd1, []byte("AAAA"), 0)
	f.Pwrite(fd2, []byte("BBBB"), 4) // fd2's cursor restarts at the chunk base

	// Live state is fine (kernel DRAM had both writes).
	if got := readFile(t, f, "/a"); string(got) != "AAAABBBB" {
		t.Fatalf("live = %q", got)
	}
	// Crash + replay: fd1's record reads clobbered staged bytes.
	f2 := crashMount(t, dev, bugs.None())
	if got := readFile(t, f2, "/a"); string(got) == "AAAABBBB" {
		t.Fatal("bug 22: staged data survived the clobber")
	}
	// Fixed system round-trips the same workload.
	g, gdev := newSplit(t, bugs.None())
	g1, _ := g.Create("/a")
	g2, _ := g.Open("/a")
	g.Pwrite(g1, []byte("AAAA"), 0)
	g.Pwrite(g2, []byte("BBBB"), 4)
	g3 := crashMount(t, gdev, bugs.None())
	if got := readFile(t, g3, "/a"); string(got) != "AAAABBBB" {
		t.Fatalf("fixed two-fd writes = %q", got)
	}
}

func TestBug23ReplayOrderPerFD(t *testing.T) {
	f, dev := newSplit(t, bugs.Of(bugs.SplitfsRelinkSkip))
	fd1, _ := f.Create("/a")
	fd2, _ := f.Open("/a")
	// Interleaved overlapping writes: the LAST write (via fd1) must win,
	// but per-FD grouped replay applies fd2's record after fd1's.
	f.Pwrite(fd2, []byte("2222"), 0) // seq n   (fd2)
	f.Pwrite(fd1, []byte("1111"), 0) // seq n+1 (fd1) — should win
	if got := readFile(t, f, "/a"); string(got) != "1111" {
		t.Fatalf("live = %q", got)
	}
	// Bug 23 lives in the replay path, so the remount uses the buggy code.
	f2 := crashMount(t, dev, bugs.Of(bugs.SplitfsRelinkSkip))
	if got := readFile(t, f2, "/a"); string(got) != "2222" {
		t.Fatalf("expected bug 23 to replay fd groups in order, got %q", got)
	}
	// Fixed system replays by global sequence.
	g, gdev := newSplit(t, bugs.None())
	g1, _ := g.Create("/a")
	g2, _ := g.Open("/a")
	g.Pwrite(g2, []byte("2222"), 0)
	g.Pwrite(g1, []byte("1111"), 0)
	g3 := crashMount(t, gdev, bugs.None())
	if got := readFile(t, g3, "/a"); string(got) != "1111" {
		t.Fatalf("fixed replay = %q", got)
	}
}

func TestPropertyDifferentialVsMemfs(t *testing.T) {
	paths := []string{"/f0", "/f1", "/d0/f2", "/d0", "/d1"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := pmem.NewDevice(testDevSize)
		sf := New(persist.New(dev), bugs.None())
		if err := sf.Mkfs(); err != nil {
			t.Fatal(err)
		}
		ref := memfs.New()
		ref.Mkfs()
		for i := 0; i < 25; i++ {
			kind := rng.Intn(9)
			a := paths[rng.Intn(len(paths))]
			b := paths[rng.Intn(len(paths))]
			off := rng.Int63n(5000)
			n := rng.Intn(2000) + 1
			s2 := rng.Int63()
			e1 := applyOp(sf, kind, a, b, off, n, s2)
			e2 := applyOp(ref, kind, a, b, off, n, s2)
			if (e1 == nil) != (e2 == nil) {
				t.Logf("seed %d op %d(%s,%s): splitfs=%v ref=%v", seed, kind, a, b, e1, e2)
				return false
			}
		}
		s1, err1 := vfs.Capture(sf)
		s2c, err2 := vfs.Capture(ref)
		if err1 != nil || err2 != nil {
			return false
		}
		if d := vfs.Diff(s1, s2c); d != "" {
			t.Logf("seed %d live diff: %s", seed, d)
			return false
		}
		// Crash without any sync: strict mode must still match exactly.
		sf2 := New(persist.New(pmem.FromImage(dev.CrashImage())), bugs.None())
		if err := sf2.Mount(); err != nil {
			t.Logf("seed %d mount: %v", seed, err)
			return false
		}
		s3, err := vfs.Capture(sf2)
		if err != nil {
			t.Logf("capture3: %v", err)
			return false
		}
		if d := vfs.Diff(s3, s2c); d != "" {
			t.Logf("seed %d crash diff: %s", seed, d)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func applyOp(f vfs.FS, kind int, a, b string, off int64, n int, seed int64) error {
	switch kind {
	case 0:
		fd, err := f.Create(a)
		if err != nil {
			return err
		}
		return f.Close(fd)
	case 1:
		return f.Mkdir(a)
	case 2:
		fd, err := f.Open(a)
		if err != nil {
			return err
		}
		defer f.Close(fd)
		buf := make([]byte, n)
		rand.New(rand.NewSource(seed)).Read(buf)
		_, err = f.Pwrite(fd, buf, off)
		return err
	case 3:
		return f.Unlink(a)
	case 4:
		return f.Rmdir(a)
	case 5:
		return f.Rename(a, b)
	case 6:
		return f.Link(a, b)
	case 7:
		return f.Truncate(a, off)
	case 8:
		fd, err := f.Open(a)
		if err != nil {
			return err
		}
		defer f.Close(fd)
		return f.Fallocate(fd, off, int64(n))
	}
	return nil
}

func TestCaps(t *testing.T) {
	f, _ := newSplit(t, bugs.None())
	c := f.Caps()
	if c.Name != "splitfs" || !c.Strong || !c.AtomicWrite {
		t.Fatalf("caps = %+v", c)
	}
}
