package ace

import (
	"fmt"

	"chipmunk/internal/workload"
)

// SuiteByName maps the CLI suite names to their generators — the single
// registry shared by the chipmunk frontend and the distributed campaign
// runner, so a coordinator and its workers resolve "seq2" to the same
// generator (and workload.SuiteHash verifies they generated the same
// workloads).
func SuiteByName(name string) ([]workload.Workload, error) {
	switch name {
	case "seq1":
		return Seq1(), nil
	case "seq2":
		return Seq2(), nil
	case "seq3m":
		return Seq3Metadata(), nil
	case "seq1dax":
		return Seq1Dax(), nil
	case "seq2dax":
		return Seq2Dax(), nil
	case "kv":
		return KV(), nil
	case "kv-smoke":
		return KVSmoke(), nil
	default:
		return nil, fmt.Errorf("unknown suite %q", name)
	}
}
