package ace

import (
	"fmt"

	"chipmunk/internal/workload"
)

// KV workloads exercise the WAL key-value store (internal/app/kvstore)
// through app-level ops, the input to Chipmunk's application-durability
// checking. Like the syscall suites, enumeration is exhaustive over a tiny
// vocabulary: every ordered pair of mutations under every kvsync placement,
// plus compaction- and read-path-specific sequences.

// kvPut builds a kvput op: key, value = Pattern(seed, size).
func kvPut(key string, size int64, seed uint32) workload.Op {
	return workload.Op{Kind: workload.OpKVPut, Path: key, FDSlot: -1, Size: size, Seed: seed}
}

func kvDel(key string) workload.Op {
	return workload.Op{Kind: workload.OpKVDel, Path: key, FDSlot: -1}
}

func kvSync() workload.Op {
	return workload.Op{Kind: workload.OpKVSync, FDSlot: -1}
}

func kvGet(key string, size int64, seed uint32) workload.Op {
	return workload.Op{Kind: workload.OpKVGet, Path: key, FDSlot: -1, Size: size, Seed: seed}
}

// kvMutations is the mutation vocabulary: two keys, an overwrite, and a
// delete — enough to distinguish prefix losses, reorderings, and stale
// values in recovered states.
func kvMutations() []workload.Op {
	return []workload.Op{
		kvPut("alpha", 64, 11),
		kvPut("beta", 128, 12),
		kvPut("alpha", 32, 13), // overwrite with different size and pattern
		kvDel("alpha"),
	}
}

// KV enumerates the application-durability suite: all ordered mutation
// pairs × all kvsync placements (after each, after first only, after
// second only), plus a WAL-compaction workload and a read-verification
// workload. 4×4×3 + 2 = 50 workloads.
func KV() []workload.Workload {
	muts := kvMutations()
	var ws []workload.Workload
	id := 0
	for _, m1 := range muts {
		for _, m2 := range muts {
			for _, layout := range []struct {
				name   string
				s1, s2 bool
			}{
				{"ss", true, true},  // sync after both
				{"s_", true, false}, // unsynced tail
				{"_s", false, true}, // both acked by the second sync
			} {
				ops := []workload.Op{m1}
				if layout.s1 {
					ops = append(ops, kvSync())
				}
				ops = append(ops, m2)
				if layout.s2 {
					ops = append(ops, kvSync())
				}
				ws = append(ws, workload.Workload{
					Name: fmt.Sprintf("kv-%03d-%s-%s-%s", id, m1.Kind, m2.Kind, layout.name),
					Ops:  ops,
				})
				id++
			}
		}
	}
	ws = append(ws, kvCompaction(), kvReadback())
	return ws
}

// KVSmoke is the CI-sized subset: one workload per kvsync layout, plus the
// compaction and read-back workloads.
func KVSmoke() []workload.Workload {
	all := KV()
	smoke := []workload.Workload{all[0], all[1], all[2]}
	return append(smoke, kvCompaction(), kvReadback())
}

// kvCompaction crosses the store's compaction threshold (4 KiB of durable
// WAL) so crash states land inside snapshot writing, WAL truncation, and
// old-snapshot cleanup.
func kvCompaction() workload.Workload {
	var ops []workload.Op
	for i := 0; i < 5; i++ {
		ops = append(ops,
			kvPut(fmt.Sprintf("bulk%d", i), 512, uint32(20+i)),
			kvPut("alpha", 256, uint32(40+i)),
			kvSync(),
		)
	}
	return workload.Workload{Name: "kv-compact", Ops: ops}
}

// kvReadback exercises the live read path: acked and unsynced values must
// both be visible to Get before any crash.
func kvReadback() workload.Workload {
	return workload.Workload{Name: "kv-readback", Ops: []workload.Op{
		kvPut("alpha", 64, 11),
		kvSync(),
		kvGet("alpha", 64, 11),
		kvPut("beta", 128, 12), // unsynced, but live reads see it
		kvGet("beta", 128, 12),
		kvSync(),
		kvDel("alpha"),
		kvSync(),
		kvGet("beta", 128, 12),
	}}
}
