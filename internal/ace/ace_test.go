package ace

import (
	"testing"

	"chipmunk/internal/fs/memfs"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

// TestSeq1Count verifies the paper's §3.4.1 count: 56 seq-1 workloads.
func TestSeq1Count(t *testing.T) {
	if got := len(Seq1()); got != 56 {
		t.Fatalf("seq-1 count = %d, want 56", got)
	}
	if got := len(Variants()); got != 56 {
		t.Fatalf("variant count = %d, want 56", got)
	}
}

// TestSeq2Count: 56² = 3136.
func TestSeq2Count(t *testing.T) {
	if got := len(Seq2()); got != 3136 {
		t.Fatalf("seq-2 count = %d, want 3136", got)
	}
}

// TestSeq3MetadataCount: metadata subset cubed.
func TestSeq3MetadataCount(t *testing.T) {
	m := MetadataVariantCount()
	if m != 22 {
		t.Fatalf("metadata variants = %d, want 22", m)
	}
	if got := len(Seq3Metadata()); got != m*m*m {
		t.Fatalf("seq-3 metadata count = %d, want %d", got, m*m*m)
	}
}

// TestMetadataSubsetOps: the seq-3 subset contains only the four ops the
// paper names.
func TestMetadataSubsetOps(t *testing.T) {
	allowed := map[workload.OpKind]bool{
		workload.OpPwrite: true, workload.OpLink: true,
		workload.OpUnlink: true, workload.OpRename: true,
	}
	for _, v := range Variants() {
		if v.Metadata && !allowed[v.Op.Kind] {
			t.Errorf("metadata subset contains %v", v.Op.Kind)
		}
	}
}

// TestAlignmentAndSingleFD: ACE's blind spots by construction — every
// offset/size is 8-byte aligned and no workload opens two FDs on one file.
// These are exactly why four bugs are fuzzer-only (§4.3).
func TestAlignmentAndSingleFD(t *testing.T) {
	for _, w := range Seq2() {
		for _, op := range w.Ops {
			if op.Off%8 != 0 || op.Size%8 != 0 {
				t.Fatalf("%s: unaligned op %s", w.Name, op)
			}
			if op.FDSlot > 0 {
				t.Fatalf("%s: multi-slot op %s", w.Name, op)
			}
		}
	}
}

// TestDependenciesSatisfied: every generated workload runs on the reference
// model with all CORE ops succeeding (dependency ops may be no-ops that
// fail, core ops must not fail for lack of dependencies). We require that
// path-not-found never happens.
func TestDependenciesSatisfied(t *testing.T) {
	suites := [][]workload.Workload{Seq1(), Seq2()}
	for _, suite := range suites {
		for _, w := range suite {
			fs := memfs.New()
			fs.Mkfs()
			res := workload.Run(fs, w, workload.Hooks{})
			for i, r := range res {
				if r.Err == vfs.ErrNotExist {
					t.Fatalf("%s op %d (%s): dependency not satisfied: %v", w.Name, i, r.Op, r.Err)
				}
			}
		}
	}
}

// TestSeq3DependenciesSampled: spot-check the large seq-3 space.
func TestSeq3DependenciesSampled(t *testing.T) {
	all := Seq3Metadata()
	for i := 0; i < len(all); i += 97 {
		w := all[i]
		fs := memfs.New()
		fs.Mkfs()
		res := workload.Run(fs, w, workload.Hooks{})
		for j, r := range res {
			if r.Err == vfs.ErrNotExist {
				t.Fatalf("%s op %d (%s): %v", w.Name, j, r.Op, r.Err)
			}
		}
	}
}

// TestDaxModeInsertsSync: every DAX-mode workload ends with fsync or sync.
func TestDaxModeInsertsSync(t *testing.T) {
	for _, w := range Seq1Dax() {
		last := w.Ops[len(w.Ops)-1]
		if last.Kind != workload.OpFsync && last.Kind != workload.OpSync {
			t.Fatalf("%s does not end with a persistence op: %s", w.Name, last)
		}
	}
	if len(Seq1Dax()) <= len(Seq1()) {
		t.Fatal("DAX mode should generate more variants than PM mode")
	}
}

// TestWorkloadNamesUnique guards against generator collisions.
func TestWorkloadNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range Seq2() {
		if seen[w.Name] {
			t.Fatalf("duplicate workload name %s", w.Name)
		}
		seen[w.Name] = true
	}
}
