// Package ace reimplements the Automatic Crash Explorer workload generator
// [Mohan et al., CrashMonkey/ACE] as adapted by the Chipmunk paper (§3.4.1):
// it exhaustively enumerates small workloads — sequences of 1, 2, or 3 core
// file-system operations over a tiny predetermined file universe — and
// satisfies dependencies by creating the files and directories an operation
// needs.
//
// Two modes mirror the paper's: the PM mode emits no fsync calls (for
// systems with strong guarantees), and the DAX mode appends fsync/sync
// variants for ext4-DAX and XFS-DAX.
//
// The PM-mode operation space is tuned to exactly 56 seq-1 variants and
// therefore 56² = 3136 seq-2 workloads, the counts reported in §3.4.1. The
// seq-3 "metadata" mode uses only pwrite, link, unlink, and rename, like
// the paper's seq-3 runs (our metadata variant count is 22, giving 22³ =
// 10648 workloads versus the paper's 50650 — same structure, smaller
// argument space).
//
// ACE deliberately explores a coarse argument lattice: offsets and sizes
// are multiples of the 8-byte PM atomicity unit, and every file is accessed
// through a single descriptor. Those are exactly the blind spots §4.3
// attributes the four fuzzer-only bugs to.
package ace

import (
	"fmt"

	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

// The file universe: two top-level files, two directories, one nested file.
const (
	fileA  = "/f0"
	fileB  = "/f1"
	dirA   = "/d0"
	dirB   = "/d1"
	nested = "/d0/f3"
)

// Variant is one core operation with concrete arguments.
type Variant struct {
	Op workload.Op
	// Needs lists paths that must exist (with their types) before the op.
	Needs []need
	// Metadata marks the variant as part of the seq-3 metadata subset.
	Metadata bool
}

type need struct {
	path string
	typ  vfs.FileType
}

func fileNeed(p string) need { return need{p, vfs.TypeRegular} }
func dirNeed(p string) need  { return need{p, vfs.TypeDir} }

// Variants enumerates the 56 seq-1 operation variants of the PM mode.
func Variants() []Variant {
	var v []Variant
	seed := uint32(1)
	op := func(o workload.Op, meta bool, needs ...need) {
		o.Seed = seed
		seed++
		v = append(v, Variant{Op: o, Needs: needs, Metadata: meta})
	}

	// creat: 4 variants.
	op(workload.Op{Kind: workload.OpCreat, Path: fileA, FDSlot: -1}, false)
	op(workload.Op{Kind: workload.OpCreat, Path: fileB, FDSlot: -1}, false)
	op(workload.Op{Kind: workload.OpCreat, Path: "/d0/f2", FDSlot: -1}, false, dirNeed(dirA))
	op(workload.Op{Kind: workload.OpCreat, Path: "/d1/f2", FDSlot: -1}, false, dirNeed(dirB))

	// mkdir: 4 variants.
	op(workload.Op{Kind: workload.OpMkdir, Path: dirA}, false)
	op(workload.Op{Kind: workload.OpMkdir, Path: dirB}, false)
	op(workload.Op{Kind: workload.OpMkdir, Path: "/d0/d2"}, false, dirNeed(dirA))
	op(workload.Op{Kind: workload.OpMkdir, Path: "/d1/d2"}, false, dirNeed(dirB))

	// fallocate: 6 variants.
	for _, c := range []struct {
		path     string
		off, len int64
		needs    []need
	}{
		{fileA, 0, 4096, []need{fileNeed(fileA)}},
		{fileA, 0, 8192, []need{fileNeed(fileA)}},
		{fileA, 2048, 4096, []need{fileNeed(fileA)}},
		{fileA, 4096, 4096, []need{fileNeed(fileA)}},
		{fileB, 0, 4096, []need{fileNeed(fileB)}},
		{nested, 0, 4096, []need{dirNeed(dirA), fileNeed(nested)}},
	} {
		op(workload.Op{Kind: workload.OpFalloc, Path: c.path, FDSlot: -1, Off: c.off, Size: c.len}, false, c.needs...)
	}

	// write (append): 9 variants.
	for _, path := range []string{fileA, fileB, nested} {
		needs := []need{fileNeed(path)}
		if path == nested {
			needs = []need{dirNeed(dirA), fileNeed(nested)}
		}
		for _, size := range []int64{1024, 4096, 8192} {
			op(workload.Op{Kind: workload.OpWrite, Path: path, FDSlot: -1, Size: size}, false, needs...)
		}
	}

	// pwrite: 9 variants (metadata subset).
	for _, c := range []struct {
		path      string
		off, size int64
	}{
		{fileA, 0, 1024}, {fileA, 2048, 1024}, {fileA, 0, 4096}, {fileA, 4096, 1024}, {fileA, 1024, 1024},
		{fileB, 0, 1024}, {fileB, 0, 4096},
		{nested, 0, 1024}, {nested, 2048, 1024},
	} {
		needs := []need{fileNeed(c.path)}
		if c.path == nested {
			needs = []need{dirNeed(dirA), fileNeed(nested)}
		}
		op(workload.Op{Kind: workload.OpPwrite, Path: c.path, FDSlot: -1, Off: c.off, Size: c.size}, true, needs...)
	}

	// link: 4 variants (metadata subset).
	op(workload.Op{Kind: workload.OpLink, Path: fileA, Path2: "/l0"}, true, fileNeed(fileA))
	op(workload.Op{Kind: workload.OpLink, Path: fileA, Path2: "/d0/l1"}, true, fileNeed(fileA), dirNeed(dirA))
	op(workload.Op{Kind: workload.OpLink, Path: nested, Path2: "/l0"}, true, dirNeed(dirA), fileNeed(nested))
	op(workload.Op{Kind: workload.OpLink, Path: fileB, Path2: "/l0"}, true, fileNeed(fileB))

	// unlink: 3 variants (metadata subset).
	op(workload.Op{Kind: workload.OpUnlink, Path: fileA}, true, fileNeed(fileA))
	op(workload.Op{Kind: workload.OpUnlink, Path: fileB}, true, fileNeed(fileB))
	op(workload.Op{Kind: workload.OpUnlink, Path: nested}, true, dirNeed(dirA), fileNeed(nested))

	// remove: 3 variants.
	op(workload.Op{Kind: workload.OpRemove, Path: fileA}, false, fileNeed(fileA))
	op(workload.Op{Kind: workload.OpRemove, Path: dirA}, false, dirNeed(dirA))
	op(workload.Op{Kind: workload.OpRemove, Path: dirB}, false, dirNeed(dirB))

	// rename: 6 variants (metadata subset).
	op(workload.Op{Kind: workload.OpRename, Path: fileA, Path2: fileB}, true, fileNeed(fileA))
	op(workload.Op{Kind: workload.OpRename, Path: fileA, Path2: nested}, true, fileNeed(fileA), dirNeed(dirA))
	op(workload.Op{Kind: workload.OpRename, Path: nested, Path2: fileA}, true, dirNeed(dirA), fileNeed(nested))
	op(workload.Op{Kind: workload.OpRename, Path: dirA, Path2: dirB}, true, dirNeed(dirA))
	op(workload.Op{Kind: workload.OpRename, Path: fileA, Path2: "/d1/f4"}, true, fileNeed(fileA), dirNeed(dirB))
	op(workload.Op{Kind: workload.OpRename, Path: dirB, Path2: dirA}, true, dirNeed(dirB))

	// truncate: 6 variants.
	for _, c := range []struct {
		path string
		size int64
	}{
		{fileA, 0}, {fileA, 2048}, {fileA, 8192},
		{fileB, 0}, {fileB, 2048},
		{nested, 0},
	} {
		needs := []need{fileNeed(c.path)}
		if c.path == nested {
			needs = []need{dirNeed(dirA), fileNeed(nested)}
		}
		op(workload.Op{Kind: workload.OpTruncate, Path: c.path, FDSlot: -1, Size: c.size}, false, needs...)
	}

	// rmdir: 2 variants.
	op(workload.Op{Kind: workload.OpRmdir, Path: dirA}, false, dirNeed(dirA))
	op(workload.Op{Kind: workload.OpRmdir, Path: dirB}, false, dirNeed(dirB))

	return v
}

// symState tracks the symbolic file-system state used to satisfy
// dependencies while assembling a workload.
type symState struct {
	exists map[string]vfs.FileType
	seed   uint32
}

func newSymState() *symState {
	return &symState{exists: map[string]vfs.FileType{"/": vfs.TypeDir}, seed: 1000}
}

// satisfy appends the dependency ops (mkdir/creat) that make n hold.
func (st *symState) satisfy(ops []workload.Op, n need) []workload.Op {
	dir, _ := vfs.SplitPath(n.path)
	if dir != "/" {
		if _, ok := st.exists[dir]; !ok {
			ops = st.satisfy(ops, dirNeed(dir))
		}
	}
	if typ, ok := st.exists[n.path]; ok && typ == n.typ {
		return ops
	}
	if n.typ == vfs.TypeDir {
		ops = append(ops, workload.Op{Kind: workload.OpMkdir, Path: n.path})
	} else {
		// Files get a small initial extent so truncate/overwrite variants
		// have data to lose, mirroring ACE's file-setup phase.
		ops = append(ops,
			workload.Op{Kind: workload.OpCreat, Path: n.path, FDSlot: -1},
			workload.Op{Kind: workload.OpWrite, Path: n.path, FDSlot: -1, Size: 4096, Seed: st.seed},
		)
		st.seed++
	}
	st.exists[n.path] = n.typ
	return ops
}

// apply updates the symbolic state for a core op.
func (st *symState) apply(op workload.Op) {
	switch op.Kind {
	case workload.OpCreat:
		st.exists[vfs.Clean(op.Path)] = vfs.TypeRegular
	case workload.OpMkdir:
		st.exists[vfs.Clean(op.Path)] = vfs.TypeDir
	case workload.OpUnlink, workload.OpRmdir, workload.OpRemove:
		delete(st.exists, vfs.Clean(op.Path))
	case workload.OpRename:
		from, to := vfs.Clean(op.Path), vfs.Clean(op.Path2)
		if typ, ok := st.exists[from]; ok {
			delete(st.exists, from)
			st.exists[to] = typ
		}
	case workload.OpLink:
		st.exists[vfs.Clean(op.Path2)] = vfs.TypeRegular
	}
}

// build assembles a workload from a sequence of variants, inserting
// dependency operations.
func build(name string, variants []Variant) workload.Workload {
	st := newSymState()
	var ops []workload.Op
	for _, v := range variants {
		for _, n := range v.Needs {
			ops = st.satisfy(ops, n)
		}
		ops = append(ops, v.Op)
		st.apply(v.Op)
	}
	return workload.Workload{Name: name, Ops: ops}
}

// Seq1 returns the 56 seq-1 PM-mode workloads.
func Seq1() []workload.Workload {
	vars := Variants()
	out := make([]workload.Workload, 0, len(vars))
	for i, v := range vars {
		out = append(out, build(fmt.Sprintf("seq1-%03d", i), []Variant{v}))
	}
	return out
}

// Seq2 returns the 3136 seq-2 PM-mode workloads (every ordered pair).
func Seq2() []workload.Workload {
	vars := Variants()
	out := make([]workload.Workload, 0, len(vars)*len(vars))
	for i, a := range vars {
		for j, b := range vars {
			out = append(out, build(fmt.Sprintf("seq2-%03d-%03d", i, j), []Variant{a, b}))
		}
	}
	return out
}

// Seq3Metadata returns the seq-3 workloads over the metadata subset
// (pwrite, link, unlink, rename), as in the paper's seq-3 runs.
func Seq3Metadata() []workload.Workload {
	var meta []Variant
	for _, v := range Variants() {
		if v.Metadata {
			meta = append(meta, v)
		}
	}
	out := make([]workload.Workload, 0, len(meta)*len(meta)*len(meta))
	for i, a := range meta {
		for j, b := range meta {
			for k, c := range meta {
				out = append(out, build(fmt.Sprintf("seq3m-%02d-%02d-%02d", i, j, k), []Variant{a, b, c}))
			}
		}
	}
	return out
}

// MetadataVariantCount reports the size of the seq-3 metadata op space.
func MetadataVariantCount() int {
	n := 0
	for _, v := range Variants() {
		if v.Metadata {
			n++
		}
	}
	return n
}

// withSyncTail appends the DAX-mode persistence ops to a workload: one
// variant fsyncs the file the final op touched, one issues a global sync
// (the paper's default ACE mode inserts at least one fsync-family call).
func withSyncTail(w workload.Workload, idx int) []workload.Workload {
	fsyncTarget := ""
	for i := len(w.Ops) - 1; i >= 0; i-- {
		op := w.Ops[i]
		switch op.Kind {
		case workload.OpWrite, workload.OpPwrite, workload.OpCreat, workload.OpFalloc, workload.OpTruncate:
			fsyncTarget = op.Path
		case workload.OpRename, workload.OpLink:
			fsyncTarget = op.Path2
		}
		if fsyncTarget != "" {
			break
		}
	}
	syncW := workload.Workload{Name: fmt.Sprintf("%s-sync", w.Name), Ops: append(append([]workload.Op{}, w.Ops...), workload.Op{Kind: workload.OpSync})}
	if fsyncTarget == "" {
		return []workload.Workload{syncW}
	}
	fsyncW := workload.Workload{Name: fmt.Sprintf("%s-fsync", w.Name), Ops: append(append([]workload.Op{}, w.Ops...), workload.Op{Kind: workload.OpFsync, Path: fsyncTarget, FDSlot: -1})}
	return []workload.Workload{fsyncW, syncW}
}

// Seq1Dax returns the DAX-mode seq-1 workloads: fsync/sync variants of the
// PM-mode ops plus the setxattr/removexattr variants the paper adds for
// ext4-DAX and XFS-DAX (§4.1).
func Seq1Dax() []workload.Workload {
	var out []workload.Workload
	for i, w := range Seq1() {
		out = append(out, withSyncTail(w, i)...)
	}
	for i, v := range daxXattrVariants() {
		out = append(out, withSyncTail(build(fmt.Sprintf("seq1x-%02d", i), []Variant{v}), i)...)
	}
	return out
}

// daxXattrVariants enumerates the setxattr/removexattr operations tested
// only on the DAX systems.
func daxXattrVariants() []Variant {
	var v []Variant
	for _, c := range []struct {
		kind  workload.OpKind
		path  string
		attr  string
		needs []need
	}{
		{workload.OpSetxattr, fileA, "user.attr1", []need{fileNeed(fileA)}},
		{workload.OpSetxattr, fileA, "user.attr2", []need{fileNeed(fileA)}},
		{workload.OpSetxattr, dirA, "user.attr1", []need{dirNeed(dirA)}},
		{workload.OpRemovexattr, fileA, "user.attr1", []need{fileNeed(fileA)}},
	} {
		v = append(v, Variant{
			Op:    workload.Op{Kind: c.kind, Path: c.path, Path2: c.attr, FDSlot: -1, Seed: 77},
			Needs: c.needs,
		})
	}
	return v
}

// Seq2Dax returns the DAX-mode seq-2 workloads.
func Seq2Dax() []workload.Workload {
	var out []workload.Workload
	for i, w := range Seq2() {
		out = append(out, withSyncTail(w, i)...)
	}
	return out
}
