package fleet

import (
	"html/template"
	"net/http"
	"sort"
	"time"

	"chipmunk/internal/campaign"
)

// This file is the fleet coordinator's read-only observability surface: the
// live JSON soak view (GET /campaign/status), the stdlib-only
// auto-refreshing HTML dashboard rendered from the same snapshot
// (GET /campaign/dash), and — in coordinator.go — the Prometheus exposition
// of the merged collectors plus the fleet series (GET /debug/metrics).
// None of these mutate soak state: watching a soak is always safe.

// FuzzStatus is one point-in-time view of a fleet-fuzzing soak. All
// durations are seconds (JSON-friendly; no nanosecond fields to misread).
type FuzzStatus struct {
	CampaignID string `json:"campaign_id"`
	FS         string `json:"fs"`
	SpecHash   string `json:"spec_hash"`
	RoundExecs int    `json:"round_execs"`
	GenRounds  int    `json:"gen_rounds"`
	// Budget: exactly one of BudgetExecs / BudgetSec is nonzero.
	BudgetExecs int     `json:"budget_execs,omitempty"`
	BudgetSec   float64 `json:"budget_sec,omitempty"`

	// Round state machine counts; Rounds = Pending+Leased+Done+Dropped.
	// In duration mode Rounds grows a generation at a time until the
	// wall-clock budget closes.
	Rounds   int  `json:"rounds"`
	Pending  int  `json:"pending"`
	Leased   int  `json:"leased"`
	Done     int  `json:"done"`
	Dropped  int  `json:"dropped"`
	Resumed  int  `json:"resumed,omitempty"`
	Draining bool `json:"draining,omitempty"`

	// Generations folded so far; rounds of generation g only lease once
	// generation g-1 has folded (the barrier the corpus determinism rests on).
	Generations int `json:"generations"`

	// RoundMap is one character per round in round order: '.' pending,
	// 'r' leased (running), '#' done, 'X' dropped, with a '|' between
	// generations.
	RoundMap string `json:"round_map"`

	// Corpus/coverage as of the last fold; Execs and ExecsPerSec are the
	// tentpole throughput series (credited rounds only).
	CorpusSize    int     `json:"corpus_size"`
	CoverageEdges int     `json:"coverage_edges"`
	Execs         int     `json:"execs"`
	ExecsPerSec   float64 `json:"execs_per_sec"`
	StatesChecked int     `json:"states_checked"`
	ElapsedSec    float64 `json:"elapsed_sec"`

	// Bug census as of the credited rounds.
	DistinctBugs int `json:"distinct_bugs"`
	MinPending   int `json:"min_pending"`
	MinLeased    int `json:"min_leased"`
	MinDone      int `json:"min_done"`
	MinVerified  int `json:"min_verified"`

	Workers  []campaign.WorkerStatus `json:"workers,omitempty"`
	InFlight []FuzzLeaseStatus       `json:"in_flight,omitempty"`
}

// FuzzLeaseStatus is one in-flight lease (round or minimization task).
type FuzzLeaseStatus struct {
	Kind   string `json:"kind"` // "round" or "minimize"
	ID     int    `json:"id"`
	Worker string `json:"worker"`
	// AgeSec is time since the lease grant, BeatAgeSec since its last
	// heartbeat (also the grant when none arrived yet).
	AgeSec     float64 `json:"age_sec"`
	BeatAgeSec float64 `json:"beat_age_sec"`
	// Progress is the exec count the worker piggybacked on its last
	// heartbeat (rounds only).
	Progress int `json:"progress,omitempty"`
	Attempts int `json:"attempts,omitempty"`
}

// Status snapshots the soak for the dashboard. Expired leases are shown as
// the lease state machine last left them — reclaim happens on the next
// lease request, and a read-only status probe must not advance the machine.
func (c *Coordinator) Status() FuzzStatus {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := FuzzStatus{
		CampaignID:  c.info.CampaignID,
		FS:          c.spec.FS,
		SpecHash:    c.info.SuiteHash,
		RoundExecs:  c.spec.RoundExecs,
		GenRounds:   c.spec.GenRounds,
		BudgetExecs: c.spec.BudgetExecs,
		Rounds:      len(c.rounds),
		Resumed:     c.resumed,
		Draining:    c.draining,
		Generations: c.foldedGensLocked(),
		CorpusSize:  len(c.corpus),
		Execs:       c.execs,
		ElapsedSec:  now.Sub(c.started).Seconds(),
	}
	st.CoverageEdges = len(c.coverage)
	st.StatesChecked = c.statesChecked
	if c.spec.BudgetNanos > 0 {
		st.BudgetSec = time.Duration(c.spec.BudgetNanos).Seconds()
	}
	roundMap := make([]byte, 0, len(c.rounds)+len(c.rounds)/c.spec.GenRounds)
	for i := range c.rounds {
		if i > 0 && i%c.spec.GenRounds == 0 {
			roundMap = append(roundMap, '|')
		}
		s := &c.rounds[i]
		switch s.state {
		case roundPending:
			st.Pending++
			roundMap = append(roundMap, '.')
		case roundLeased:
			st.Leased++
			roundMap = append(roundMap, 'r')
			st.InFlight = append(st.InFlight, FuzzLeaseStatus{
				Kind: ResultRound, ID: i, Worker: s.worker,
				AgeSec:     now.Sub(s.leasedAt).Seconds(),
				BeatAgeSec: now.Sub(s.lastBeat).Seconds(),
				Progress:   s.progress, Attempts: s.attempts,
			})
		case roundDone:
			st.Done++
			roundMap = append(roundMap, '#')
		case roundDropped:
			st.Dropped++
			roundMap = append(roundMap, 'X')
		}
	}
	st.RoundMap = string(roundMap)
	if st.ElapsedSec > 0 {
		st.ExecsPerSec = float64(c.execs) / st.ElapsedSec
	}
	for _, m := range c.mins {
		switch m.state {
		case minPending:
			st.MinPending++
		case minLeased:
			st.MinLeased++
			st.InFlight = append(st.InFlight, FuzzLeaseStatus{
				Kind: ResultMinimize, ID: m.id, Worker: m.worker,
				AgeSec:     now.Sub(m.leasedAt).Seconds(),
				BeatAgeSec: now.Sub(m.lastBeat).Seconds(),
				Attempts:   m.attempts,
			})
		case minDone:
			st.MinDone++
			if m.verified {
				st.MinVerified++
			}
		}
	}
	st.DistinctBugs = len(c.clusterSeen)
	for id, seen := range c.workers {
		st.Workers = append(st.Workers, campaign.WorkerStatus{
			ID: id, LastSeenSec: now.Sub(seen).Seconds(), ShardsDone: c.perWorker[id],
		})
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })
	return st
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	campaign.WriteJSON(w, http.StatusOK, c.Status())
}

// fuzzDashTmpl mirrors the campaign dashboard: one HTML page, no scripts,
// no external assets, refreshed by <meta http-equiv="refresh">.
var fuzzDashTmpl = template.Must(template.New("fuzzdash").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><meta http-equiv="refresh" content="2">
<title>chipmunk fuzz soak {{.CampaignID}}</title>
<style>
body { font-family: monospace; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin-top: 1.2em; }
table { border-collapse: collapse; } td, th { padding: 2px 10px; text-align: left; border-bottom: 1px solid #ddd; }
.map { word-break: break-all; max-width: 64em; line-height: 1.1; }
.done { color: #2a7; } .run { color: #07c; } .drop { color: #c22; font-weight: bold; } .bug { color: #c22; }
</style></head><body>
<h1>fuzz soak {{.CampaignID}} &mdash; {{.FS}} (spec {{.SpecHash}}, {{.RoundExecs}} execs/round, {{.GenRounds}} rounds/gen)</h1>
<p>
<span class="done">{{.Done}}/{{.Rounds}} rounds done</span> &middot;
<span class="run">{{.Leased}} running</span> &middot;
{{.Pending}} pending &middot; gen {{.Generations}}{{if .Dropped}} &middot; <span class="drop">{{.Dropped}} DROPPED</span>{{end}}{{if .Draining}} &middot; draining{{end}}
</p>
<p>{{.Execs}} execs &middot; {{printf "%.1f" .ExecsPerSec}} execs/sec &middot; {{.StatesChecked}} states checked &middot;
corpus {{.CorpusSize}} ({{.CoverageEdges}} edges) &middot;
<span class="bug">{{.DistinctBugs}} distinct bugs</span> &middot;
elapsed {{printf "%.0f" .ElapsedSec}}s{{if .BudgetExecs}} &middot; budget {{.BudgetExecs}} execs{{end}}{{if gt .BudgetSec 0.0}} &middot; budget {{printf "%.0f" .BudgetSec}}s{{end}}</p>
{{if .MinDone}}{{end}}<p>minimization: {{.MinDone}} done ({{.MinVerified}} re-verified) &middot; {{.MinLeased}} running &middot; {{.MinPending}} pending</p>
<h2>round map ('.' pending, 'r' running, '#' done, 'X' dropped, '|' generation barrier)</h2>
<pre class="map">{{.RoundMap}}</pre>
{{if .Workers}}<h2>workers</h2>
<table><tr><th>worker</th><th>last seen</th><th>units done</th></tr>
{{range .Workers}}<tr><td>{{.ID}}</td><td>{{printf "%.1f" .LastSeenSec}}s ago</td><td>{{.ShardsDone}}</td></tr>
{{end}}</table>{{end}}
{{if .InFlight}}<h2>in flight</h2>
<table><tr><th>kind</th><th>id</th><th>worker</th><th>age</th><th>last beat</th><th>execs</th><th>attempts</th></tr>
{{range .InFlight}}<tr><td>{{.Kind}}</td><td>{{.ID}}</td><td>{{.Worker}}</td><td>{{printf "%.1f" .AgeSec}}s</td><td>{{printf "%.1f" .BeatAgeSec}}s ago</td><td>{{.Progress}}</td><td>{{.Attempts}}</td></tr>
{{end}}</table>{{end}}
</body></html>
`))

func (c *Coordinator) handleDash(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := fuzzDashTmpl.Execute(w, c.Status()); err != nil {
		// Too late for an HTTP error (the header is out); the next refresh
		// retries anyway.
		c.log("dash render: %v", err)
	}
}
