// Package fleet is the distributed coverage-guided fuzzing mode of the
// campaign runner: the scale-out counterpart of cmd/chipmunkfuzz, the way
// internal/campaign is the scale-out counterpart of suite runs.
//
// Workers run the gray-box fuzzer (internal/fuzz) locally in fixed-size
// rounds and ship what each round contributed — corpus candidates with
// their coverage signatures, violations, and counters — back to a
// coordinator, which owns the global corpus, the deduplicated bug census,
// and the checkpoint.
//
// # Determinism: generation barriers
//
// A naive distributed fuzzer is a race: whichever worker reports first
// shapes the corpus every later mutation draws from. Fleet mode removes the
// race with generation barriers. Rounds are numbered 0..R-1 and grouped
// into generations of GenRounds; round r fuzzes with RNG seed
// splitmix64(FuzzSeed, r) against the corpus cut that existed when its
// generation opened, and generation g+1 opens only when every generation-g
// round has resolved (credited or dropped). At that barrier the coordinator
// folds the generation's discoveries in a canonical order — sorted by
// (FNV-64a of the workload text, then text) — admitting an entry iff it
// still carries an unseen signature. The global corpus is therefore an
// append-only log that is a pure function of the spec, not of worker count,
// scheduling, or result arrival order; with an exec budget the entire soak
// — corpus, coverage, census — is byte-reproducible.
//
// Minimization rides the same machinery: the first fold that sees a new
// violation cluster (kind, FS, canonical trace prefix) creates a
// minimization task for its lexicographically-smallest reproducer, and the
// tasks are handed out as priority leases. Workers shrink the reproducer
// with fuzz.Minimize and re-verify that the minimized workload still trips
// the same cluster before the census trusts it.
package fleet

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"time"

	"chipmunk/internal/campaign"
	"chipmunk/internal/core"
	"chipmunk/internal/obs"
	"chipmunk/internal/workload"
)

// DefaultRoundExecs is how many fuzzing iterations one round lease covers:
// small enough that corpus folds happen frequently and a lost worker wastes
// little, large enough that wire overhead stays negligible.
const DefaultRoundExecs = 25

// DefaultGenRounds is the generation width: how many rounds share one
// corpus cut between folds.
const DefaultGenRounds = 8

// DefaultMinExecs is the engine-invocation budget of one minimization task.
const DefaultMinExecs = 60

// Lease statuses beyond campaign.LeaseWait / campaign.LeaseDone.
const (
	// LeaseRound carries one fuzzing round.
	LeaseRound = "round"
	// LeaseMinimize carries one reproducer-minimization task.
	LeaseMinimize = "minimize"
)

// Wire paths. The handshake reuses campaign.PathSpec; the fuzzing protocol
// adds its own lease/result/heartbeat verbs so a fuzz worker pointed at a
// suite coordinator (or vice versa) fails loudly with 404s, never confuses
// shard indices with round indices.
const (
	PathFuzzLease     = "/campaign/fuzz-lease"
	PathFuzzResult    = "/campaign/fuzz-result"
	PathFuzzHeartbeat = "/campaign/fuzz-heartbeat"
)

// Normalize fills a fuzz spec's defaulted knobs in place so that the
// coordinator and every worker hash the same spec. Returns the input for
// chaining.
func Normalize(spec campaign.Spec) campaign.Spec {
	if spec.RoundExecs <= 0 {
		spec.RoundExecs = DefaultRoundExecs
	}
	if spec.GenRounds <= 0 {
		spec.GenRounds = DefaultGenRounds
	}
	if spec.MinExecs <= 0 {
		spec.MinExecs = DefaultMinExecs
	}
	if spec.FuzzSeed == 0 {
		spec.FuzzSeed = 1
	}
	return spec
}

// SpecHash fingerprints a fuzz spec the way workload.SuiteHash fingerprints
// a generated suite: FNV-64a over the canonical JSON encoding. Workers
// recompute it from the handshake spec and refuse to fuzz on a mismatch —
// the fuzz-mode analogue of the suite fingerprint check.
func SpecHash(spec campaign.Spec) string {
	b, _ := json.Marshal(spec)
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("fz%016x", h.Sum64())
}

// RoundSeed derives round r's fuzzer RNG seed from the soak's master seed
// via a splitmix64 scramble — adjacent rounds get statistically independent
// streams, and the mapping is a pure function both sides can compute.
func RoundSeed(master int64, round int) int64 {
	z := uint64(master) + (uint64(round)+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z &^ (1 << 63))
}

// ParseBudget parses the -budget flag: a time.Duration ("90s", "2h") bounds
// wall-clock, a bare integer bounds total fuzzing execs. Exec budgets make
// the whole soak deterministic; duration budgets trade that for a
// predictable stop time.
func ParseBudget(s string) (execs int, d time.Duration, err error) {
	if s == "" {
		return 0, 0, fmt.Errorf("fleet: empty -budget (want a duration like 90s or an exec count like 2000)")
	}
	if n, nerr := strconv.Atoi(s); nerr == nil {
		if n <= 0 {
			return 0, 0, fmt.Errorf("fleet: -budget execs must be positive, got %d", n)
		}
		return n, 0, nil
	}
	dur, derr := time.ParseDuration(s)
	if derr != nil {
		return 0, 0, fmt.Errorf("fleet: bad -budget %q (want a duration like 90s or an exec count like 2000)", s)
	}
	if dur <= 0 {
		return 0, 0, fmt.Errorf("fleet: -budget duration must be positive, got %v", dur)
	}
	return 0, dur, nil
}

// CorpusEntry is one admitted workload on the wire and in the corpus log:
// the serialized workload plus the full signature set that justified its
// admission. Sum is an FNV-64a self-checksum (like campaign.ShardPayload's)
// so a corpus entry corrupted in flight is detected by the receiver, never
// silently mutated into a different corpus.
type CorpusEntry struct {
	// Text is the workload in workload.Format form (round-trips Parse).
	Text string `json:"text"`
	// Sigs is the workload's full sorted trace-signature multiset.
	Sigs []uint64 `json:"sigs"`
	Sum  string   `json:"sum,omitempty"`
}

// EntrySum computes a corpus entry's self-checksum: FNV-64a over the JSON
// encoding with Sum cleared.
func EntrySum(e CorpusEntry) string {
	e.Sum = ""
	b, _ := json.Marshal(e)
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// entryKey orders corpus candidates canonically at generation folds:
// primary key the FNV-64a of the workload text, ties broken by the text
// itself (total order, so the fold is deterministic).
func entryKey(e CorpusEntry) uint64 {
	h := fnv.New64a()
	h.Write([]byte(e.Text))
	return h.Sum64()
}

// FuzzLeaseRequest asks for the next unit of fuzzing work
// (POST /campaign/fuzz-lease).
type FuzzLeaseRequest struct {
	Worker   string `json:"worker"`
	SpecHash string `json:"spec_hash"`
	// Cursor is how many corpus-log entries the worker already caches, so
	// the coordinator ships only the missing suffix with each round lease.
	Cursor int `json:"cursor"`
}

// FuzzLeaseResponse answers a fuzz lease request. Status is LeaseRound,
// LeaseMinimize, campaign.LeaseWait, or campaign.LeaseDone.
type FuzzLeaseResponse struct {
	Status string `json:"status"`

	// Round lease (Status == LeaseRound).
	Round int `json:"round,omitempty"`
	// Execs is the round's iteration count; Seed its fuzzer RNG seed.
	Execs int   `json:"execs,omitempty"`
	Seed  int64 `json:"seed,omitempty"`
	// Corpus is corpus log [Base, Cursor): the entries the worker is
	// missing, by its request cursor, up to this round's generation cut.
	// Base < request cursor means the worker's cache ran ahead of this
	// round's cut (or was corrupted): truncate to Base, then append.
	Corpus []CorpusEntry `json:"corpus,omitempty"`
	Base   int           `json:"base"`
	// Cursor is the corpus cut this round must fuzz against: exactly the
	// first Cursor entries of the log.
	Cursor int `json:"cursor"`

	// Minimization lease (Status == LeaseMinimize).
	MinID      int    `json:"min_id,omitempty"`
	MinCluster string `json:"min_cluster,omitempty"`
	// MinText is the representative reproducer to shrink; MinBudget the
	// engine-invocation budget fuzz.Minimize gets.
	MinText   string `json:"min_text,omitempty"`
	MinBudget int    `json:"min_budget,omitempty"`

	TTLNanos int64 `json:"ttl_ns,omitempty"`
}

// FuzzViolation is one violation on the wire: the cluster coordinates the
// census groups on (kind, FS, canonical trace prefix — exactly what the
// engine journals in its violation events) plus the serialized triggering
// workload so the coordinator can pick minimization representatives.
type FuzzViolation struct {
	Kind    string `json:"kind"`
	FS      string `json:"fs"`
	Prefix  string `json:"prefix"`
	SysName string `json:"sys_name,omitempty"`
	Phase   string `json:"phase,omitempty"`
	// Detail is the first line of the violation detail (journal convention).
	Detail string `json:"detail,omitempty"`
	// Workload is the triggering workload's name; Text its full serialized
	// form (workload.Format).
	Workload string `json:"workload"`
	Text     string `json:"text"`
}

// ClusterKey is the identity the census dedups on.
func (v FuzzViolation) ClusterKey() string {
	return v.Kind + "|" + v.FS + "|" + v.Prefix
}

// ClusterKindFS extracts a cluster key's stable coordinates. Minimization
// re-verification checks these two, not the full key: the trace prefix is a
// rendering of the op sequence, so removing padding ops necessarily changes
// it — a minimized reproducer re-verifies when it still trips the same
// violation kind on the same system.
func ClusterKindFS(key string) (kind, fs string) {
	parts := strings.SplitN(key, "|", 3)
	if len(parts) < 2 {
		return key, ""
	}
	return parts[0], parts[1]
}

// NewFuzzViolation freezes an engine violation into its wire form.
func NewFuzzViolation(v core.Violation) FuzzViolation {
	return FuzzViolation{
		Kind:     v.Kind.String(),
		FS:       v.FS,
		Prefix:   core.TracePrefix(v.Workload, v.Syscall),
		SysName:  v.SysName,
		Phase:    v.Phase.String(),
		Detail:   firstLine(v.Detail),
		Workload: v.Workload.Name,
		Text:     workload.Format(v.Workload),
	}
}

// Event renders the violation as the journal event the triage pipeline
// clusters — the same shape internal/core emits for live runs, so
// report.TriageEvents treats fleet results and merged journals identically.
func (v FuzzViolation) Event() obs.Event {
	return obs.Event{
		Type: "violation", FS: v.FS, Workload: v.Workload,
		Kind: v.Kind, Phase: v.Phase, Detail: v.Detail, Prefix: v.Prefix,
	}
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

// Result kinds.
const (
	ResultRound    = "round"
	ResultMinimize = "minimize"
)

// FuzzResult is one completed work unit (POST /campaign/fuzz-result):
// either a fuzzing round's contribution or a minimization outcome. Err set
// means the unit failed (engine error, contained panic, watchdog) — one
// failed dispatch attempt, mirroring campaign.ShardPayload.Err.
type FuzzResult struct {
	Kind     string `json:"kind"`
	Worker   string `json:"worker"`
	SpecHash string `json:"spec_hash"`

	// Round result fields.
	Round             int             `json:"round,omitempty"`
	Execs             int             `json:"execs,omitempty"`
	StatesChecked     int             `json:"states_checked,omitempty"`
	RetriedChecks     int             `json:"retried_checks,omitempty"`
	QuarantinedChecks int             `json:"quarantined_checks,omitempty"`
	ElapsedNanos      int64           `json:"elapsed_ns,omitempty"`
	NewEntries        []CorpusEntry   `json:"new_entries,omitempty"`
	Violations        []FuzzViolation `json:"violations,omitempty"`
	Obs               *obs.Snapshot   `json:"obs,omitempty"`

	// Minimization result fields. MinVerified reports that the minimized
	// workload was re-run and still tripped the same violation cluster.
	MinID       int    `json:"min_id,omitempty"`
	MinCluster  string `json:"min_cluster,omitempty"`
	MinText     string `json:"min_text,omitempty"`
	MinExecs    int    `json:"min_execs,omitempty"`
	MinVerified bool   `json:"min_verified,omitempty"`

	Err string `json:"err,omitempty"`
	// Sum is the FNV-64a self-checksum (ResultSum with Sum cleared),
	// verified at the coordinator's wire boundary like shard payloads.
	Sum string `json:"sum,omitempty"`
}

// ResultSum computes the result's wire self-checksum.
func ResultSum(p *FuzzResult) string {
	cp := *p
	cp.Sum = ""
	b, err := json.Marshal(&cp)
	if err != nil {
		return fmt.Sprintf("unmarshalable: %v", err)
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// FuzzHeartbeat extends a live round or minimization lease
// (POST /campaign/fuzz-heartbeat). Kind is ResultRound or ResultMinimize;
// ID the round index or minimization task id.
type FuzzHeartbeat struct {
	Worker   string `json:"worker"`
	SpecHash string `json:"spec_hash"`
	Kind     string `json:"kind"`
	ID       int    `json:"id"`
	// Execs piggybacks live progress for the dashboard.
	Execs int `json:"execs,omitempty"`
}
