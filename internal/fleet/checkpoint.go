package fleet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// The fleet checkpoint mirrors the campaign checkpoint: an append-only
// JSONL file, one fsynced line per state transition, loaded tolerantly so
// the torn final line of a SIGKILLed coordinator costs one record, not the
// soak. Because round results are deterministic and the corpus fold is a
// pure function of the credited/dropped round set, replaying the recorded
// lines through the same fold state machine reconstructs the coordinator's
// exact corpus, coverage, and minimization queue — a resumed soak continues
// byte-for-byte where the dead one stopped.

// fleetCkptLine is the on-disk record. Type discriminates:
//
//	"fleet"   header (spec hash, geometry, soak start time)
//	"round"   credited round result (full FuzzResult)
//	"min"     credited minimization result
//	"drop"    round dropped after spending its dispatch attempts
//	"mindrop" minimization task dropped likewise
//
// Drops MUST be persisted: a dropped round resolves its generation, and the
// corpus every later generation fuzzed against depends on that resolution.
// A resume that forgot a drop would wait forever for a round nobody will
// credit — or worse, re-run it and fold a different corpus than the one the
// recorded later rounds actually used.
type fleetCkptLine struct {
	Type string `json:"type"`
	// Header fields.
	CampaignID     string `json:"campaign_id,omitempty"`
	SpecHash       string `json:"spec_hash,omitempty"`
	FS             string `json:"fs,omitempty"`
	RoundExecs     int    `json:"round_execs,omitempty"`
	GenRounds      int    `json:"gen_rounds,omitempty"`
	BudgetExecs    int    `json:"budget_execs,omitempty"`
	BudgetNanos    int64  `json:"budget_ns,omitempty"`
	StartUnixNanos int64  `json:"start_unix_ns,omitempty"`
	// Round / minimization credit.
	Payload *FuzzResult `json:"payload,omitempty"`
	// Round drop.
	Round    int    `json:"round,omitempty"`
	Worker   string `json:"worker,omitempty"`
	Err      string `json:"err,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	// Minimization drop.
	MinCluster string `json:"min_cluster,omitempty"`
}

// RoundDrop is one dropped round in the recovered state.
type RoundDrop struct {
	Round    int
	Worker   string
	Err      string
	Attempts int
}

// CheckpointState is what a resumed fleet coordinator recovers from disk.
type CheckpointState struct {
	Header *fleetCkptLine
	// Rounds and Mins hold the credited results in file order; Drops and
	// MinDrops the recorded give-ups.
	Rounds   []*FuzzResult
	Mins     []*FuzzResult
	Drops    []RoundDrop
	MinDrops []string
	// Skipped counts corrupt or torn lines the tolerant loader dropped.
	Skipped int
}

// maxCkptLine bounds one checkpoint line during reads; round results carry
// corpus entries and violation ledgers, so the cap is generous.
const maxCkptLine = 16 << 20

// Checkpoint appends fleet records to the soak's checkpoint file.
type Checkpoint struct {
	f *os.File
}

// LoadCheckpoint reads the checkpoint at path tolerantly. Missing file =
// fresh soak, no error.
func LoadCheckpoint(path string) (*CheckpointState, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return &CheckpointState{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: checkpoint: %w", err)
	}
	defer f.Close()
	return readCheckpoint(f)
}

func readCheckpoint(r io.Reader) (*CheckpointState, error) {
	st := &CheckpointState{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxCkptLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec fleetCkptLine
		if json.Unmarshal(line, &rec) != nil {
			st.Skipped++
			continue
		}
		switch rec.Type {
		case "fleet":
			if st.Header == nil {
				rec2 := rec
				st.Header = &rec2
			}
		case "round":
			if rec.Payload != nil {
				st.Rounds = append(st.Rounds, rec.Payload)
			} else {
				st.Skipped++
			}
		case "min":
			if rec.Payload != nil {
				st.Mins = append(st.Mins, rec.Payload)
			} else {
				st.Skipped++
			}
		case "drop":
			st.Drops = append(st.Drops, RoundDrop{
				Round: rec.Round, Worker: rec.Worker, Err: rec.Err, Attempts: rec.Attempts,
			})
		case "mindrop":
			st.MinDrops = append(st.MinDrops, rec.MinCluster)
		default:
			st.Skipped++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: checkpoint: %w", err)
	}
	return st, nil
}

// Validate checks a recovered checkpoint against the soak about to resume
// it. The spec hash covers every knob that shapes the deterministic fold —
// seed, budgets, round and generation geometry — so a single comparison
// refuses every flavor of "wrong checkpoint".
func (st *CheckpointState) Validate(specHash string) error {
	if st.Header == nil {
		return nil
	}
	if st.Header.SpecHash != specHash {
		return fmt.Errorf(
			"fleet: checkpoint spec fingerprint mismatch: file has %s (fs=%s), soak is %s — wrong checkpoint or changed fuzz spec",
			st.Header.SpecHash, st.Header.FS, specHash)
	}
	return nil
}

// OpenCheckpoint opens path for appending, writing the header when the file
// is new or headerless. Call after LoadCheckpoint+Validate.
func OpenCheckpoint(path string, header fleetCkptLine, fresh bool) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: checkpoint: %w", err)
	}
	ck := &Checkpoint{f: f}
	if fresh {
		header.Type = "fleet"
		if err := ck.append(header); err != nil {
			f.Close()
			return nil, err
		}
	}
	return ck, nil
}

// AppendRound records one credited round durably (fsync per append — the
// point is surviving a coordinator SIGKILL).
func (ck *Checkpoint) AppendRound(p *FuzzResult) error {
	if ck == nil {
		return nil
	}
	return ck.append(fleetCkptLine{Type: "round", Payload: p})
}

// AppendMin records one credited minimization result durably.
func (ck *Checkpoint) AppendMin(p *FuzzResult) error {
	if ck == nil {
		return nil
	}
	return ck.append(fleetCkptLine{Type: "min", Payload: p})
}

// AppendDrop records a dropped round durably — part of the fold's input,
// see the type comment.
func (ck *Checkpoint) AppendDrop(d RoundDrop) error {
	if ck == nil {
		return nil
	}
	return ck.append(fleetCkptLine{
		Type: "drop", Round: d.Round, Worker: d.Worker, Err: d.Err, Attempts: d.Attempts,
	})
}

// AppendMinDrop records a dropped minimization task durably.
func (ck *Checkpoint) AppendMinDrop(cluster string) error {
	if ck == nil {
		return nil
	}
	return ck.append(fleetCkptLine{Type: "mindrop", MinCluster: cluster})
}

func (ck *Checkpoint) append(rec fleetCkptLine) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleet: checkpoint: %w", err)
	}
	if _, err := ck.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("fleet: checkpoint: %w", err)
	}
	if err := ck.f.Sync(); err != nil {
		return fmt.Errorf("fleet: checkpoint: %w", err)
	}
	return nil
}

// Close closes the checkpoint file.
func (ck *Checkpoint) Close() error {
	if ck == nil {
		return nil
	}
	return ck.f.Close()
}
