package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"chipmunk/internal/campaign"
	"chipmunk/internal/report"
)

// fuzzTestSpec is the soak under test: NOVA with the two injected rename
// bugs (4, 5), an exec budget small enough for -race but bug-rich enough
// that the census, corpus fold, and minimization queue are all non-trivial.
// (Bugs "all" makes every crash state buggy — hundreds of clusters and a
// minute-long minimization queue, all noise for these assertions.)
func fuzzTestSpec() campaign.Spec {
	return Normalize(campaign.Spec{
		FS: "nova", Bugs: "4,5", Cap: 2,
		Fuzz: true, FuzzSeed: 11,
		BudgetExecs: 120, RoundExecs: 15, GenRounds: 4, MinExecs: 20,
	})
}

// soakResult is one distributed soak's outcome.
type soakResult struct {
	census     report.FuzzCensus
	stats      Stats
	corpus     []CorpusEntry
	workerErrs []error
}

// runSoak spins up a fleet coordinator on a loopback listener plus n
// in-process fuzz workers and waits for the soak to finish. mut customizes
// each worker's config; ctxFor supplies per-worker contexts.
func runSoak(t *testing.T, cc CoordinatorConfig, n int, ctxFor func(i int) context.Context, mut func(i int, wc *WorkerConfig)) soakResult {
	t.Helper()
	coord, err := NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := campaign.ListenAndServe("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	res := soakResult{workerErrs: make([]error, n)}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wc := WorkerConfig{Addr: srv.Addr(), ID: fmt.Sprintf("w%d", i), Poll: 5 * time.Millisecond}
		if mut != nil {
			mut(i, &wc)
		}
		wctx := context.Background()
		if ctxFor != nil {
			wctx = ctxFor(i)
		}
		wg.Add(1)
		go func(i int, wc WorkerConfig, wctx context.Context) {
			defer wg.Done()
			res.workerErrs[i] = RunWorker(wctx, wc)
		}(i, wc, wctx)
	}
	census, err := coord.Wait(context.Background())
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	wg.Wait()
	srv.Close()
	res.census = census
	res.stats = coord.Stats()
	res.corpus = coord.Corpus()
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	return res
}

func renderCensus(t *testing.T, c report.FuzzCensus) string {
	t.Helper()
	var b strings.Builder
	if err := report.WriteFuzzCensus(&b, c); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestNodeRoundReproducible: one round is a pure function of (config, seed,
// corpus cut) — two nodes over the same inputs produce byte-identical
// corpus candidates and violation ledgers.
func TestNodeRoundReproducible(t *testing.T) {
	spec := fuzzTestSpec()
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	_, cfg, err := opts.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	run := func() RoundDelta {
		n, err := NewNode(cfg, RoundSeed(spec.FuzzSeed, 0), false, nil)
		if err != nil {
			t.Fatal(err)
		}
		d, err := n.RunRound(context.Background(), 40)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d1, d2 := run(), run()
	j1, _ := json.Marshal(struct {
		E []CorpusEntry
		V []FuzzViolation
		N int
	}{d1.NewEntries, d1.Violations, d1.StatesChecked})
	j2, _ := json.Marshal(struct {
		E []CorpusEntry
		V []FuzzViolation
		N int
	}{d2.NewEntries, d2.Violations, d2.StatesChecked})
	if string(j1) != string(j2) {
		t.Fatalf("round deltas differ:\n%s\nvs\n%s", j1, j2)
	}
	if len(d1.NewEntries) == 0 {
		t.Fatal("round admitted no corpus entries — coverage feedback broken")
	}
}

// TestConcurrentRoundsDeterministic: rounds running concurrently in one
// process (as a multi-worker in-process soak does) produce the same bytes
// as the same rounds run serially. This guards the engine-and-FS layers
// against process-shared or scheduling-dependent state leaking into round
// results — the NOVA recovery and log-GC map-order walks were exactly such
// a leak.
func TestConcurrentRoundsDeterministic(t *testing.T) {
	spec := fuzzTestSpec()
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	_, cfg, err := opts.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 8
	runRound := func(r int) string {
		n, err := NewNode(cfg, RoundSeed(spec.FuzzSeed, r), false, nil)
		if err != nil {
			t.Fatal(err)
		}
		d, err := n.RunRound(context.Background(), spec.RoundExecs)
		if err != nil {
			t.Fatal(err)
		}
		j, _ := json.Marshal(struct {
			E []CorpusEntry
			V []FuzzViolation
			N int
		}{d.NewEntries, d.Violations, d.StatesChecked})
		return string(j)
	}
	serial := make([]string, rounds)
	for r := 0; r < rounds; r++ {
		serial[r] = runRound(r)
	}
	conc := make([]string, rounds)
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			conc[r] = runRound(r)
		}(r)
	}
	wg.Wait()
	for r := 0; r < rounds; r++ {
		if serial[r] != conc[r] {
			t.Errorf("round %d differs between serial and concurrent execution:\nserial: %.400s\nconc:   %.400s", r, serial[r], conc[r])
		}
	}
}

// TestSoakDeterministicAcrossWorkerCounts is the tentpole contract: the
// rendered census — bug clusters, reproducers, corpus and coverage sizes —
// is byte-identical for any worker count, because the generation-barrier
// fold makes the corpus a pure function of the spec.
func TestSoakDeterministicAcrossWorkerCounts(t *testing.T) {
	var want string
	var wantCorpus string
	for _, n := range []int{1, 2, 4} {
		res := runSoak(t, CoordinatorConfig{Spec: fuzzTestSpec()}, n, nil, nil)
		for i, err := range res.workerErrs {
			if err != nil {
				t.Fatalf("workers=%d: worker %d: %v", n, i, err)
			}
		}
		if res.stats.RoundsDropped > 0 {
			t.Fatalf("workers=%d: %d rounds dropped in a clean run", n, res.stats.RoundsDropped)
		}
		got := renderCensus(t, res.census)
		cj, _ := json.Marshal(res.corpus)
		if want == "" {
			want, wantCorpus = got, string(cj)
			if len(res.census.Clusters) == 0 {
				t.Fatal("soak found no bugs on injected-bug nova — census is trivial, pick a different seed/budget")
			}
			if res.census.MinTasks == 0 {
				t.Fatal("no minimization tasks opened despite bugs found")
			}
			continue
		}
		if got != want {
			t.Errorf("workers=%d: census diverged:\n--- want ---\n%s\n--- got ---\n%s", n, want, got)
		}
		if string(cj) != wantCorpus {
			t.Errorf("workers=%d: corpus log diverged", n)
		}
	}
}

// TestSoakSurvivesWireFaults: under the deterministic wire-fault injector
// (dropped, truncated, and bit-flipped HTTP exchanges) the census still
// matches the clean run byte for byte — checksums and re-grants turn
// corruption into retries, never into state divergence.
func TestSoakSurvivesWireFaults(t *testing.T) {
	clean := runSoak(t, CoordinatorConfig{Spec: fuzzTestSpec()}, 2, nil, nil)
	want := renderCensus(t, clean.census)

	coord, err := NewCoordinator(CoordinatorConfig{Spec: fuzzTestSpec()})
	if err != nil {
		t.Fatal(err)
	}
	handler, stats := campaign.WrapWireFaults(coord, campaign.DefaultWireFaults(7))
	srv, err := campaign.ListenAndServe("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = RunWorker(context.Background(), WorkerConfig{
				Addr: srv.Addr(), ID: fmt.Sprintf("w%d", i), Poll: 5 * time.Millisecond,
			})
		}(i)
	}
	census, err := coord.Wait(context.Background())
	if err != nil {
		t.Fatalf("soak under wire faults: %v", err)
	}
	wg.Wait()
	srv.Close()
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if got := renderCensus(t, census); got != want {
		t.Errorf("census diverged under wire faults:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	fs := stats()
	if fs.Dropped+fs.Duped+fs.Truncated+fs.Corrupted+fs.Delayed == 0 {
		t.Error("wire-fault injector fired zero faults — the test exercised nothing")
	}
}

// TestCheckpointResume kills the coordinator mid-soak and resumes from its
// checkpoint: the resumed soak replays the credited rounds without
// re-crediting (no duplicate work), completes the budget, and renders the
// same census as an uninterrupted run.
func TestCheckpointResume(t *testing.T) {
	clean := runSoak(t, CoordinatorConfig{Spec: fuzzTestSpec()}, 2, nil, nil)
	want := renderCensus(t, clean.census)
	totalRounds := clean.stats.Rounds

	ckpt := t.TempDir() + "/fleet.ckpt"

	// Phase 1: one worker whose context dies after a few leases; then cancel
	// the coordinator (SIGKILL model: the checkpoint is all that survives).
	// Short lease TTL so draining past the dead worker's lease is fast.
	coord1, err := NewCoordinator(CoordinatorConfig{
		Spec: fuzzTestSpec(), CheckpointPath: ckpt, LeaseTTL: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := campaign.ListenAndServe("127.0.0.1:0", coord1)
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	leases := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunWorker(wctx, WorkerConfig{ //nolint:errcheck // killed on purpose
			Addr: srv1.Addr(), ID: "w0", Poll: 5 * time.Millisecond,
			OnLease: func(FuzzLeaseResponse) {
				leases++
				if leases > 3 {
					wcancel()
				}
			},
		})
	}()
	<-done
	wcancel()
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if _, err := coord1.Wait(cctx); err == nil {
		t.Fatal("interrupted Wait returned nil error")
	}
	srv1.Close()
	coord1.Close() //nolint:errcheck // dead coordinator
	st1 := coord1.Stats()
	if st1.RoundsCredited == 0 {
		t.Fatal("phase 1 credited nothing; the resume test needs a partial checkpoint")
	}
	if st1.RoundsCredited >= totalRounds {
		t.Fatal("phase 1 finished the whole soak; nothing left to resume")
	}

	// Phase 2: resume from the checkpoint and finish.
	res := runSoak(t, CoordinatorConfig{Spec: fuzzTestSpec(), CheckpointPath: ckpt}, 2, nil, nil)
	for i, err := range res.workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if res.stats.Resumed == 0 {
		t.Fatal("resume replayed nothing from the checkpoint")
	}
	if res.stats.Resumed < st1.RoundsCredited {
		t.Errorf("resumed %d units < %d credited in phase 1", res.stats.Resumed, st1.RoundsCredited)
	}
	if res.stats.RoundsCredited != totalRounds {
		t.Errorf("rounds credited = %d, want %d (duplicate or missing credits)", res.stats.RoundsCredited, totalRounds)
	}
	if got := renderCensus(t, res.census); got != want {
		t.Errorf("resumed census diverged:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestSpecHashRejectsForeignWorker: a worker whose normalized spec hashes
// differently must be refused at handshake.
func TestSpecHashRejectsForeignWorker(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{Spec: fuzzTestSpec()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := campaign.ListenAndServe("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	info := coord.Info()
	bad := info
	bad.SuiteHash = "fz0000000000000000"
	err = RunWorker(context.Background(), WorkerConfig{
		Addr: srv.Addr(), ID: "imposter", Poll: 5 * time.Millisecond, Info: &bad,
	})
	if err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("foreign worker not refused: %v", err)
	}
	coord.Drain()
	coord.Close() //nolint:errcheck // teardown
}

// TestParseBudget covers both budget syntaxes and their error paths.
func TestParseBudget(t *testing.T) {
	if execs, d, err := ParseBudget("2000"); err != nil || execs != 2000 || d != 0 {
		t.Fatalf("ParseBudget(2000) = %d, %v, %v", execs, d, err)
	}
	if execs, d, err := ParseBudget("90s"); err != nil || execs != 0 || d != 90*time.Second {
		t.Fatalf("ParseBudget(90s) = %d, %v, %v", execs, d, err)
	}
	for _, bad := range []string{"", "-5", "0", "forever", "-2h"} {
		if _, _, err := ParseBudget(bad); err == nil {
			t.Errorf("ParseBudget(%q) accepted", bad)
		}
	}
}

// TestCensusIndependentOfCreditOrder replays the same credited round
// payloads into fresh coordinators in different arrival orders and checks
// the rendered census is byte-identical — the distributed-dedup half of the
// determinism contract, isolated from live scheduling.
func TestCensusIndependentOfCreditOrder(t *testing.T) {
	// Harvest one generation's worth of real round results.
	spec := fuzzTestSpec()
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	_, cfg, err := opts.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	var results []*FuzzResult
	for r := 0; r < spec.GenRounds; r++ {
		n, err := NewNode(cfg, RoundSeed(spec.FuzzSeed, r), false, nil)
		if err != nil {
			t.Fatal(err)
		}
		d, err := n.RunRound(context.Background(), spec.RoundExecs)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, &FuzzResult{
			Kind: ResultRound, Worker: "harvest", SpecHash: SpecHash(spec), Round: r,
			Execs: d.Execs, StatesChecked: d.StatesChecked,
			NewEntries: d.NewEntries, Violations: d.Violations,
		})
	}

	credit := func(order []int) (string, string) {
		coord, err := NewCoordinator(CoordinatorConfig{Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range order {
			if _, err := coord.Credit(results[i]); err != nil {
				t.Fatalf("credit round %d: %v", i, err)
			}
		}
		cj, _ := json.Marshal(coord.Corpus())
		return renderCensus(t, coord.Census()), string(cj)
	}
	fwd := make([]int, len(results))
	rev := make([]int, len(results))
	for i := range results {
		fwd[i] = i
		rev[len(results)-1-i] = i
	}
	censusF, corpusF := credit(fwd)
	censusR, corpusR := credit(rev)
	if censusF != censusR {
		t.Errorf("census depends on credit order:\n--- forward ---\n%s\n--- reverse ---\n%s", censusF, censusR)
	}
	if corpusF != corpusR {
		t.Error("folded corpus depends on credit order")
	}
}
