package fleet

import (
	"context"
	"fmt"
	"sync/atomic"

	"chipmunk/internal/core"
	"chipmunk/internal/fuzz"
	"chipmunk/internal/obs"
	"chipmunk/internal/workload"
)

// Node runs one fuzzing round: a fresh fuzz.Fuzzer seeded with the round's
// RNG seed and the coordinator's corpus cut, absorbed in log order (the log
// IS the canonical order — each entry was admitted exactly because it
// carried a then-unseen signature, so replaying it in order reconstructs
// the same corpus and coverage on every worker). Everything a round
// produces is a pure function of (spec, round index, corpus cut).
type Node struct {
	fz *fuzz.Fuzzer
	// progress mirrors fz.StatesChecked after each completed iteration; the
	// heartbeat goroutine reads it concurrently with RunRound, so it cannot
	// touch the fuzzer's plain fields directly.
	progress atomic.Int64
}

// RoundDelta is what one round contributed, ready for the wire.
type RoundDelta struct {
	Execs             int
	StatesChecked     int
	RetriedChecks     int
	QuarantinedChecks int
	NewEntries        []CorpusEntry
	Violations        []FuzzViolation
	Obs               *obs.Snapshot
}

// NewNode builds a round's fuzzer from the coordinator's corpus cut.
// Entries that fail to parse are rejected as corrupt — a node must never
// silently fuzz against a different corpus than its peers.
func NewNode(cfg core.Config, seed int64, kv bool, corpus []CorpusEntry) (*Node, error) {
	fz := fuzz.New(cfg, seed, nil)
	fz.KV = kv
	for i, e := range corpus {
		w, err := workload.Parse(e.Text)
		if err != nil {
			return nil, fmt.Errorf("fleet: corpus entry %d unparseable: %w", i, err)
		}
		fz.Absorb(w, e.Sigs)
	}
	return &Node{fz: fz}, nil
}

// RunRound executes execs fuzzing iterations and collects the round's
// delta. Cancellation between iterations returns the partial delta with
// ctx's error; the caller discards it (the lease expires and the round
// re-runs whole elsewhere — partial rounds are never credited).
func (n *Node) RunRound(ctx context.Context, execs int) (RoundDelta, error) {
	var d RoundDelta
	for i := 0; i < execs; i++ {
		if err := ctx.Err(); err != nil {
			return d, err
		}
		sd, err := n.fz.StepDelta()
		if err != nil {
			return d, err
		}
		if sd.Admitted {
			e := CorpusEntry{Text: workload.Format(sd.Workload), Sigs: sd.AllSigs}
			e.Sum = EntrySum(e)
			d.NewEntries = append(d.NewEntries, e)
		}
		for _, v := range sd.Result.Violations {
			d.Violations = append(d.Violations, NewFuzzViolation(v))
		}
		n.progress.Store(int64(n.fz.StatesChecked))
	}
	d.Execs = n.fz.Execs
	d.StatesChecked = n.fz.StatesChecked
	d.RetriedChecks = n.fz.RetriedChecks
	d.QuarantinedChecks = n.fz.Quarantined
	d.Obs = n.fz.ObsTotals
	return d, nil
}

// Progress reports crash states checked so far (heartbeat piggyback).
// Safe to call concurrently with RunRound.
func (n *Node) Progress() int { return int(n.progress.Load()) }
