package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"chipmunk/internal/campaign"
	"chipmunk/internal/core"
	"chipmunk/internal/fuzz"
	"chipmunk/internal/obs"
	"chipmunk/internal/workload"
)

// DefaultRoundTimeout is the worker-side watchdog for one round or
// minimization task. Rounds are small (DefaultRoundExecs fuzzing
// iterations), so a generous but finite deadline keeps a hung target from
// pinning a fleet slot.
const DefaultRoundTimeout = 10 * time.Minute

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// Addr is the coordinator's host:port.
	Addr string
	// ID names this worker in leases and per-worker stats (default:
	// hostname-pid).
	ID string
	// RoundTimeout is the per-unit engine watchdog (0 = DefaultRoundTimeout,
	// negative = no watchdog).
	RoundTimeout time.Duration
	// DialBudget bounds the total retry time of each wire call
	// (0 = campaign.DefaultDialBudget). Post-handshake exhaustion means the
	// soak is over (completed, or crashed with its checkpoint safe) and the
	// worker exits cleanly.
	DialBudget time.Duration
	// Journal, when non-nil, receives this worker's run-journal events.
	Journal *obs.Journal
	// Poll is the wait-state poll interval (default 300ms).
	Poll time.Duration
	// OnLease, when set, is called after each granted lease before the unit
	// runs — the hook kill-mid-round tests use to die at a precise point.
	OnLease func(FuzzLeaseResponse)
	// Logf, when set, receives one line per lease/result event.
	Logf func(format string, args ...any)
	// Info, when non-nil, is a handshake result already fetched by the
	// frontend (the -worker CLI fetches once to pick fuzz vs. suite mode);
	// RunWorker skips its own fetch.
	Info *campaign.SpecInfo
}

// FetchSpec performs the coordinator handshake: fetch the campaign.SpecInfo
// served at campaign.PathSpec. Frontends call it once to route between the
// suite worker (campaign.RunWorker) and the fuzz worker (RunWorker here) —
// the two modes share the handshake path precisely so workers need no
// mode flag.
func FetchSpec(ctx context.Context, addr string, budget time.Duration) (*campaign.SpecInfo, error) {
	if budget <= 0 {
		budget = campaign.DefaultDialBudget
	}
	var info campaign.SpecInfo
	client := &http.Client{}
	if err := campaign.GetJSON(ctx, client, "http://"+addr+campaign.PathSpec, &info, budget); err != nil {
		return nil, fmt.Errorf("fleet: handshake with %s: %w", addr, err)
	}
	return &info, nil
}

// RunWorker joins the fuzzing soak at wc.Addr and processes leases — rounds
// and minimization tasks — until the coordinator reports the soak done, the
// context is cancelled, or an error is fatal.
//
// The fault-model contract is the campaign worker's: no soak-visible
// progress except by a credited result POST; dying mid-unit lets the lease
// expire for re-dispatch; engine errors, contained panics, and tripped
// watchdogs become structured error payloads. On top of that, fuzz workers
// maintain a local cache of the coordinator's corpus log. Every entry is
// verified against its self-checksum on receipt, and a round lease carries
// (Base, Cursor) so the worker rebuilds exactly the log prefix the round
// must fuzz against; any mismatch discards the response — the re-grant path
// resends it intact — so a corrupted wire can slow a worker down but never
// make it fuzz against the wrong corpus.
func RunWorker(ctx context.Context, wc WorkerConfig) error {
	if wc.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		wc.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if wc.Poll <= 0 {
		wc.Poll = 300 * time.Millisecond
	}
	if wc.RoundTimeout == 0 {
		wc.RoundTimeout = DefaultRoundTimeout
	}
	if wc.DialBudget <= 0 {
		wc.DialBudget = campaign.DefaultDialBudget
	}
	logf := wc.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client := &http.Client{}

	info := wc.Info
	if info == nil {
		var err error
		if info, err = FetchSpec(ctx, wc.Addr, wc.DialBudget); err != nil {
			return err
		}
	}
	if !info.Spec.Fuzz {
		return fmt.Errorf("fleet: coordinator %s serves a suite campaign, not a fuzz soak (use the campaign worker)", wc.Addr)
	}
	// Fingerprint check, the fuzz-mode analogue of the suite-hash check: a
	// worker whose spec normalization or hash diverged must stop here, not
	// merge incomparable rounds.
	spec := Normalize(info.Spec)
	if localHash := SpecHash(spec); localHash != info.SuiteHash {
		return fmt.Errorf(
			"fleet: spec fingerprint mismatch: coordinator %s has %s, this worker computes %s — binaries differ, refusing to fuzz",
			wc.Addr, info.SuiteHash, localHash)
	}
	opts, err := spec.Options()
	if err != nil {
		return err
	}
	if spec.Stats {
		opts.Obs = obs.New()
	}
	opts.Journal = wc.Journal
	sys, cfg, err := opts.Resolve()
	if err != nil {
		return err
	}
	kv := spec.App == "kv"
	logf("worker %s joined fuzz soak %s: %s, seed %d, %d execs/round, %d rounds/gen, fingerprint %s",
		wc.ID, info.CampaignID, sys.Name, spec.FuzzSeed, spec.RoundExecs, spec.GenRounds, info.SuiteHash)

	var cache []CorpusEntry
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease FuzzLeaseResponse
		err := campaign.PostJSON(ctx, client, "http://"+wc.Addr+PathFuzzLease,
			FuzzLeaseRequest{Worker: wc.ID, SpecHash: info.SuiteHash, Cursor: len(cache)},
			&lease, wc.DialBudget)
		if err != nil {
			if gone(err) {
				logf("worker %s: coordinator %s gone; assuming soak over", wc.ID, wc.Addr)
				return nil
			}
			return fmt.Errorf("fleet: lease: %w", err)
		}
		var payload *FuzzResult
		var abandoned bool
		switch lease.Status {
		case campaign.LeaseDone:
			logf("worker %s: soak done", wc.ID)
			return nil
		case campaign.LeaseWait:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wc.Poll):
			}
			continue
		case LeaseRound:
			if wc.OnLease != nil {
				wc.OnLease(lease)
			}
			if !absorbLease(&cache, lease, wc.ID, logf) {
				continue // corrupt corpus delta: discard, re-poll (re-grant resends)
			}
			logf("worker %s: running round %d (%d execs, seed %d, corpus %d)",
				wc.ID, lease.Round, lease.Execs, lease.Seed, lease.Cursor)
			payload, abandoned = runRound(ctx, client, wc, cfg, kv, cache[:lease.Cursor], lease, info)
		case LeaseMinimize:
			if wc.OnLease != nil {
				wc.OnLease(lease)
			}
			logf("worker %s: minimizing cluster %q (task %d, budget %d)",
				wc.ID, lease.MinCluster, lease.MinID, lease.MinBudget)
			payload, abandoned = runMinimize(ctx, client, wc, cfg, lease, info)
		default:
			// Only in-flight corruption produces an unknown status: discard
			// and re-poll — whatever was granted expires or is re-granted.
			logf("worker %s: unknown lease status %q; discarding (corrupt response?)", wc.ID, lease.Status)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wc.Poll):
			}
			continue
		}
		if payload == nil {
			if abandoned {
				logf("worker %s: lease lost mid-run; abandoning", wc.ID)
				continue
			}
			return ctx.Err()
		}
		payload.Sum = ResultSum(payload)
		var credit campaign.CreditResponse
		err = campaign.PostJSON(ctx, client, "http://"+wc.Addr+PathFuzzResult, payload, &credit, wc.DialBudget)
		if err != nil {
			if gone(err) {
				logf("worker %s: coordinator %s gone before result; lease will expire elsewhere", wc.ID, wc.Addr)
				return nil
			}
			return fmt.Errorf("fleet: result: %w", err)
		}
		switch {
		case payload.Err != "":
			logf("worker %s: %s %d failed (%s); coordinator decides", wc.ID, payload.Kind, unitID(payload), payload.Err)
		case credit.Duplicate:
			logf("worker %s: %s %d was already credited (re-dispatched past our lease)", wc.ID, payload.Kind, unitID(payload))
		case credit.Accepted:
			logf("worker %s: %s %d credited", wc.ID, payload.Kind, unitID(payload))
		}
		if credit.Done {
			logf("worker %s: soak done", wc.ID)
			return nil
		}
	}
}

func unitID(p *FuzzResult) int {
	if p.Kind == ResultMinimize {
		return p.MinID
	}
	return p.Round
}

// absorbLease applies a round lease's corpus delta to the worker's cache,
// verifying geometry and per-entry checksums. false = the response was
// corrupted in flight; the caller discards it and re-polls.
func absorbLease(cache *[]CorpusEntry, lease FuzzLeaseResponse, id string, logf func(string, ...any)) bool {
	if lease.Base < 0 || lease.Base > len(*cache) || lease.Base > lease.Cursor ||
		lease.Base+len(lease.Corpus) != lease.Cursor {
		logf("worker %s: lease round %d corpus delta [%d,+%d) fails geometry check against cursor %d (cache %d); discarding (corrupt response?)",
			id, lease.Round, lease.Base, len(lease.Corpus), lease.Cursor, len(*cache))
		return false
	}
	for i, e := range lease.Corpus {
		if e.Sum == "" || e.Sum != EntrySum(e) {
			logf("worker %s: lease round %d corpus entry %d fails its checksum; discarding (corrupt response?)",
				id, lease.Round, lease.Base+i)
			return false
		}
	}
	*cache = append((*cache)[:lease.Base], lease.Corpus...)
	return true
}

// heartbeatLoop extends the unit's lease every TTL/3 while it runs,
// piggybacking live progress. An explicit refusal sets lost and cancels the
// unit. Identical contract to the campaign worker's inline loop.
func heartbeatLoop(runCtx context.Context, cancel context.CancelFunc, client *http.Client,
	wc WorkerConfig, info *campaign.SpecInfo, kind string, id int,
	ttlNanos int64, progress *atomic.Int64, lost *atomic.Bool, done chan struct{}) {
	defer close(done)
	interval := time.Duration(ttlNanos) / 3
	if interval <= 0 {
		interval = campaign.DefaultLeaseTTL / 3
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-runCtx.Done():
			return
		case <-t.C:
		}
		var hb campaign.HeartbeatResponse
		err := campaign.PostJSON(runCtx, client, "http://"+wc.Addr+PathFuzzHeartbeat,
			FuzzHeartbeat{Worker: wc.ID, SpecHash: info.SuiteHash, Kind: kind, ID: id,
				Execs: int(progress.Load())}, &hb, interval)
		if err != nil {
			return // the result POST or the lease expiry decides
		}
		if !hb.Extended {
			wc.Journal.Emit(obs.Event{
				Type: "heartbeat-refused", FS: info.Spec.FS, Workload: "fuzz",
				Worker: wc.ID, Sys: -1, Rank: id,
				Detail: "coordinator refused lease extension (expired or re-dispatched); abandoning " + kind,
			})
			lost.Store(true)
			cancel()
			return
		}
	}
}

// runRound executes one leased fuzzing round under the worker's
// self-defense layers and freezes the result. Returns (nil, false) on
// cancellation (nothing to report), (nil, true) when the lease was lost
// mid-run. Engine errors, contained panics, and tripped watchdogs become
// payloads with Err set — one failed dispatch attempt.
func runRound(ctx context.Context, client *http.Client, wc WorkerConfig, cfg core.Config,
	kv bool, corpus []CorpusEntry, lease FuzzLeaseResponse, info *campaign.SpecInfo) (*FuzzResult, bool) {
	runCtx, cancel := context.WithCancel(ctx)
	if wc.RoundTimeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, wc.RoundTimeout)
	}
	defer cancel()

	var lost atomic.Bool
	var progress atomic.Int64
	hbDone := make(chan struct{})
	go heartbeatLoop(runCtx, cancel, client, wc, info, ResultRound, lease.Round,
		lease.TTLNanos, &progress, &lost, hbDone)

	start := time.Now()
	delta, err := func() (d RoundDelta, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("engine panic: %v", r)
			}
		}()
		node, err := NewNode(cfg, lease.Seed, kv, corpus)
		if err != nil {
			return RoundDelta{}, err
		}
		ticker := make(chan struct{})
		defer close(ticker)
		go func() {
			// Mirror the node's states-checked count into the heartbeat
			// piggyback without threading a callback through the fuzz loop.
			t := time.NewTicker(200 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-ticker:
					return
				case <-t.C:
					progress.Store(int64(node.Progress()))
				}
			}
		}()
		return node.RunRound(runCtx, lease.Execs)
	}()
	cancel()
	<-hbDone

	errPayload := func(msg string) *FuzzResult {
		return &FuzzResult{Kind: ResultRound, Worker: wc.ID, SpecHash: info.SuiteHash,
			Round: lease.Round, Err: msg}
	}
	switch {
	case err == nil:
		return &FuzzResult{
			Kind: ResultRound, Worker: wc.ID, SpecHash: info.SuiteHash,
			Round:             lease.Round,
			Execs:             delta.Execs,
			StatesChecked:     delta.StatesChecked,
			RetriedChecks:     delta.RetriedChecks,
			QuarantinedChecks: delta.QuarantinedChecks,
			ElapsedNanos:      time.Since(start).Nanoseconds(),
			NewEntries:        delta.NewEntries,
			Violations:        delta.Violations,
			Obs:               delta.Obs,
		}, false
	case lost.Load():
		return nil, true
	case ctx.Err() != nil:
		return nil, false
	case runCtx.Err() == context.DeadlineExceeded:
		msg := fmt.Sprintf("round watchdog: engine exceeded %v", wc.RoundTimeout)
		wc.Journal.Emit(obs.Event{
			Type: "shard-watchdog", FS: info.Spec.FS, Workload: "fuzz",
			Worker: wc.ID, Sys: -1, Rank: lease.Round, Detail: msg,
		})
		return errPayload(msg), false
	default:
		return errPayload(err.Error()), false
	}
}

// runMinimize shrinks a leased reproducer with fuzz.Minimize, then re-runs
// the minimized workload once and reports whether it still trips the same
// violation cluster — the census only labels a reproducer "minimized" on a
// verified shrink.
func runMinimize(ctx context.Context, client *http.Client, wc WorkerConfig, cfg core.Config,
	lease FuzzLeaseResponse, info *campaign.SpecInfo) (*FuzzResult, bool) {
	runCtx, cancel := context.WithCancel(ctx)
	if wc.RoundTimeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, wc.RoundTimeout)
	}
	defer cancel()

	var lost atomic.Bool
	var progress atomic.Int64
	hbDone := make(chan struct{})
	go heartbeatLoop(runCtx, cancel, client, wc, info, ResultMinimize, lease.MinID,
		lease.TTLNanos, &progress, &lost, hbDone)

	payload, err := func() (p *FuzzResult, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("engine panic: %v", r)
			}
		}()
		w, err := workload.Parse(lease.MinText)
		if err != nil {
			return nil, fmt.Errorf("reproducer unparseable: %w", err)
		}
		if w.Name == "" {
			w.Name = fmt.Sprintf("fleet-min-%d", lease.MinID)
		}
		minimized, execs, err := fuzz.Minimize(cfg, w, lease.MinBudget)
		if err != nil {
			return nil, err
		}
		progress.Store(int64(execs))
		if err := runCtx.Err(); err != nil {
			return nil, err
		}
		res, err := core.RunContext(runCtx, cfg, minimized)
		if err != nil {
			return nil, err
		}
		// Verify against the cluster's stable coordinates (kind, FS): the
		// trace prefix changes whenever minimization drops an op, so the full
		// key cannot survive a successful shrink.
		wantKind, wantFS := ClusterKindFS(lease.MinCluster)
		verified := false
		for _, v := range res.Violations {
			if v.Kind.String() == wantKind && v.FS == wantFS {
				verified = true
				break
			}
		}
		return &FuzzResult{
			Kind: ResultMinimize, Worker: wc.ID, SpecHash: info.SuiteHash,
			MinID: lease.MinID, MinCluster: lease.MinCluster,
			MinText: workload.Format(minimized), MinExecs: execs + 1, MinVerified: verified,
		}, nil
	}()
	cancel()
	<-hbDone

	switch {
	case err == nil:
		return payload, false
	case lost.Load():
		return nil, true
	case ctx.Err() != nil:
		return nil, false
	case runCtx.Err() == context.DeadlineExceeded:
		return &FuzzResult{Kind: ResultMinimize, Worker: wc.ID, SpecHash: info.SuiteHash,
			MinID: lease.MinID, MinCluster: lease.MinCluster,
			Err: fmt.Sprintf("minimize watchdog: exceeded %v", wc.RoundTimeout)}, false
	default:
		return &FuzzResult{Kind: ResultMinimize, Worker: wc.ID, SpecHash: info.SuiteHash,
			MinID: lease.MinID, MinCluster: lease.MinCluster, Err: err.Error()}, false
	}
}

// gone mirrors the campaign worker's transport-vs-protocol classification.
func gone(err error) bool {
	return errors.Is(err, campaign.ErrCoordinatorGone)
}
