package fleet

import (
	"context"
	"testing"

	"chipmunk/internal/campaign"
)

// TestSerialSoakNoPanic drives a full 1200-exec soak through one serial
// worker with NO panic recovery between the engine and the test, so any
// engine panic fails the test with a stack instead of being absorbed by
// the round-retry path and surfacing as a dropped round.
//
// Regression: round 46 of exactly this soak used to panic inside nova's
// Pwrite ("assignment to entry in nil map") when a fuzzed workload wrote
// through a descriptor whose inode had been unlinked and its inode number
// reused by a later mkdir. The fix defers inode destruction to the last
// close (openFDs refcount), matching real NOVA's eviction-time reclaim.
func TestSerialSoakNoPanic(t *testing.T) {
	spec := Normalize(campaign.Spec{
		FS: "nova", Bugs: "4,5", Cap: 2,
		Fuzz: true, FuzzSeed: 1,
		BudgetExecs: 1200,
	})
	coord, err := NewCoordinator(CoordinatorConfig{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close() //nolint:errcheck // in-memory coordinator
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	_, cfg, err := opts.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for {
		resp, err := coord.Lease(FuzzLeaseRequest{Worker: "serial", SpecHash: SpecHash(spec)})
		if err != nil {
			t.Fatal(err)
		}
		switch resp.Status {
		case campaign.LeaseDone:
			st := coord.Status()
			if st.Dropped != 0 {
				t.Fatalf("soak dropped %d rounds", st.Dropped)
			}
			if rounds == 0 {
				t.Fatal("soak finished without leasing any rounds")
			}
			return
		case LeaseRound:
			rounds++
			n, err := NewNode(cfg, resp.Seed, spec.App == "kv", resp.Corpus)
			if err != nil {
				t.Fatal(err)
			}
			d, err := n.RunRound(context.Background(), resp.Execs)
			if err != nil {
				t.Fatalf("round %d: %v", resp.Round, err)
			}
			res := &FuzzResult{
				Kind: ResultRound, Worker: "serial", SpecHash: SpecHash(spec),
				Round: resp.Round, Execs: d.Execs, StatesChecked: d.StatesChecked,
				RetriedChecks: d.RetriedChecks, QuarantinedChecks: d.QuarantinedChecks,
				NewEntries: d.NewEntries, Violations: d.Violations, Obs: d.Obs,
			}
			res.Sum = ResultSum(res)
			if _, err := coord.Credit(res); err != nil {
				t.Fatal(err)
			}
		case LeaseMinimize:
			// Close each minimization task unverified; this test is about
			// the round path, and the census falls back to the original
			// reproducer for unverified shrinks.
			res := &FuzzResult{
				Kind: ResultMinimize, Worker: "serial", SpecHash: SpecHash(spec),
				MinID: resp.MinID, MinCluster: resp.MinCluster,
				MinText: resp.MinText, MinVerified: false,
			}
			res.Sum = ResultSum(res)
			if _, err := coord.Credit(res); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unexpected lease status %q", resp.Status)
		}
	}
}
