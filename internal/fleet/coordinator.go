package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"chipmunk/internal/campaign"
	"chipmunk/internal/obs"
	"chipmunk/internal/report"
)

// CoordinatorConfig configures NewCoordinator.
type CoordinatorConfig struct {
	// Spec must have Fuzz set and exactly one of BudgetExecs/BudgetNanos
	// nonzero. Defaulted knobs are normalized before hashing, so workers see
	// the resolved values.
	Spec     campaign.Spec
	LeaseTTL time.Duration // 0 = campaign.DefaultLeaseTTL
	// Retries bounds failed dispatch attempts per round or minimization task
	// before it is dropped (0 = campaign.DefaultShardRetries).
	Retries int
	// CheckpointPath, when set, appends credited results durably and — when
	// the file records this same soak — resumes by replaying them.
	CheckpointPath string
	// Journal, when non-nil, receives one event per dropped round/task.
	Journal *obs.Journal
	// Logf, when set, receives one line per lease/credit/fold event.
	Logf func(format string, args ...any)
}

type roundState uint8

const (
	roundPending roundState = iota
	roundLeased
	roundDone
	roundDropped
)

type roundSlot struct {
	state    roundState
	worker   string
	deadline time.Time
	leasedAt time.Time
	lastBeat time.Time
	progress int
	attempts int
	lastErr  string
	result   *FuzzResult
}

type minState uint8

const (
	minPending minState = iota
	minLeased
	minDone
)

// minTask is one reproducer-minimization unit. Tasks are created at
// generation folds — one per first-seen violation cluster, in sorted
// cluster-key order — so their ids are a pure function of the credited
// round set, like everything else in the fold.
type minTask struct {
	id       int
	cluster  string
	text     string // representative reproducer (minimization input)
	state    minState
	worker   string
	deadline time.Time
	leasedAt time.Time
	lastBeat time.Time
	attempts int
	lastErr  string
	// Outcome: dropped means the task spent its attempts (done, unverified,
	// no result); verified means the minimized form re-tripped the cluster.
	dropped  bool
	verified bool
	minText  string
	minExecs int
}

// Stats summarizes the soak's control-plane history.
type Stats struct {
	Rounds         int
	RoundsCredited int
	RoundsDropped  int
	MinTasks       int
	MinDone        int
	MinDropped     int
	Resumed        int
	Redispatched   int
	Duplicates     int
	Rejected       int
	BadPayloads    int
	Heartbeats     int
	Generations    int
	PerWorker      map[string]int
}

// String renders the control-plane summary the -serve frontend prints.
func (st Stats) String() string {
	lines := []string{fmt.Sprintf(
		"fleet: %d/%d rounds credited in %d generations (%d resumed from checkpoint, %d re-dispatched, %d duplicates discarded, %d rejected, %d bad payloads, %d heartbeats)",
		st.RoundsCredited, st.Rounds, st.Generations, st.Resumed, st.Redispatched,
		st.Duplicates, st.Rejected, st.BadPayloads, st.Heartbeats)}
	if st.MinTasks > 0 {
		lines = append(lines, fmt.Sprintf("  minimization: %d/%d tasks done (%d dropped)",
			st.MinDone, st.MinTasks, st.MinDropped))
	}
	if st.RoundsDropped > 0 {
		lines = append(lines, fmt.Sprintf(
			"  DEGRADED: %d rounds dropped after exhausting their dispatch attempts — their fuzzing work is missing from the census",
			st.RoundsDropped))
	}
	workers := make([]string, 0, len(st.PerWorker))
	for w := range st.PerWorker {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	for _, w := range workers {
		lines = append(lines, fmt.Sprintf("  %-20s %d units", w, st.PerWorker[w]))
	}
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n"
		}
		out += l
	}
	return out
}

// Coordinator owns a fleet-fuzzing soak: the round/generation state
// machine, the canonical corpus log, the minimization queue, the bug
// census, and the checkpoint. It is an http.Handler serving the fuzzing
// wire protocol (plus the campaign handshake path).
type Coordinator struct {
	info     campaign.SpecInfo
	spec     campaign.Spec
	leaseTTL time.Duration
	retries  int
	journal  *obs.Journal
	started  time.Time
	logf     func(format string, args ...any)
	mux      *http.ServeMux

	// execMode: BudgetExecs bounds the soak (fully deterministic).
	// Otherwise BudgetNanos bounds wall-clock from soakStart (persisted in
	// the checkpoint header, so a resumed soak keeps its original deadline).
	execMode    bool
	totalRounds int // exec mode: fixed; duration mode: len(rounds), growing
	soakStart   time.Time

	mu           sync.Mutex
	rounds       []roundSlot
	budgetClosed bool

	corpus   []CorpusEntry
	coverage map[uint64]bool
	// genCut[g] is the corpus-log length generation-g rounds fuzz against;
	// foldedGens = len(genCut)-1 is the number of fully folded generations.
	genCut []int

	mins        []*minTask
	clusterSeen map[string]bool

	execs             int
	statesChecked     int
	retriedChecks     int
	quarantinedChecks int
	roundsCredited    int
	roundsDropped     int
	obsMerged         *obs.Snapshot

	resumed      int
	redispatched int
	duplicates   int
	rejected     int
	badPayloads  int
	heartbeats   int
	perWorker    map[string]int
	workers      map[string]time.Time

	draining bool
	failed   error
	ckpt     *Checkpoint

	doneOnce sync.Once
	doneCh   chan struct{}
}

// NewCoordinator builds the soak: normalizes and fingerprints the spec,
// lays out the round schedule, and — when CheckpointPath names a file
// recording this same soak — replays it so only the missing work is leased
// out again.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	spec := Normalize(cfg.Spec)
	if !spec.Fuzz {
		return nil, fmt.Errorf("fleet: spec is not a fuzz spec (Fuzz unset)")
	}
	if (spec.BudgetExecs > 0) == (spec.BudgetNanos > 0) {
		return nil, fmt.Errorf("fleet: exactly one of BudgetExecs and BudgetNanos must be set")
	}
	if _, err := spec.Options(); err != nil {
		return nil, err
	}
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = campaign.DefaultLeaseTTL
	}
	retries := cfg.Retries
	if retries <= 0 {
		retries = campaign.DefaultShardRetries
	}
	hash := SpecHash(spec)
	execMode := spec.BudgetExecs > 0
	total := 0
	if execMode {
		total = (spec.BudgetExecs + spec.RoundExecs - 1) / spec.RoundExecs
	}
	c := &Coordinator{
		info: campaign.SpecInfo{
			CampaignID: soakID(spec, hash),
			Spec:       spec,
			SuiteHash:  hash,
			Shards:     total,
			ShardSize:  spec.RoundExecs,
			Workloads:  spec.BudgetExecs,
		},
		spec:        spec,
		leaseTTL:    ttl,
		retries:     retries,
		journal:     cfg.Journal,
		started:     time.Now(),
		soakStart:   time.Now(),
		logf:        cfg.Logf,
		execMode:    execMode,
		totalRounds: total,
		rounds:      make([]roundSlot, total),
		coverage:    map[uint64]bool{},
		genCut:      []int{0},
		clusterSeen: map[string]bool{},
		perWorker:   map[string]int{},
		workers:     map[string]time.Time{},
		doneCh:      make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc(campaign.PathSpec, c.handleSpec)
	mux.HandleFunc(PathFuzzLease, c.handleLease)
	mux.HandleFunc(PathFuzzResult, c.handleResult)
	mux.HandleFunc(PathFuzzHeartbeat, c.handleHeartbeat)
	mux.HandleFunc(campaign.PathStatus, c.handleStatus)
	mux.HandleFunc(campaign.PathDash, c.handleDash)
	mux.HandleFunc("/debug/metrics", c.handleMetrics)
	c.mux = mux

	if cfg.CheckpointPath != "" {
		if err := c.attachCheckpoint(cfg.CheckpointPath); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func soakID(spec campaign.Spec, hash string) string {
	h := fnv.New64a()
	b, _ := json.Marshal(spec)
	h.Write(b)
	h.Write([]byte(hash))
	return fmt.Sprintf("f%016x", h.Sum64())
}

// Info returns the soak identity served on handshake. The campaign.SpecInfo
// fields are reinterpreted for fuzz mode: SuiteHash is the spec fingerprint
// (SpecHash), Shards the round count (0 while a duration budget is open),
// ShardSize the round exec count, Workloads the exec budget.
func (c *Coordinator) Info() campaign.SpecInfo { return c.info }

func (c *Coordinator) log(format string, args ...any) {
	if c.logf != nil {
		c.logf(format, args...)
	}
}

func (c *Coordinator) complete() {
	c.doneOnce.Do(func() { close(c.doneCh) })
}

func (c *Coordinator) genOf(r int) int { return r / c.spec.GenRounds }

// foldedGensLocked is the number of fully folded generations.
func (c *Coordinator) foldedGensLocked() int { return len(c.genCut) - 1 }

// roundExecsLocked is round r's iteration count: RoundExecs, except the
// last round of an exec budget takes the remainder.
func (c *Coordinator) roundExecsLocked(r int) int {
	if c.execMode && r == c.totalRounds-1 {
		if rem := c.spec.BudgetExecs - r*c.spec.RoundExecs; rem > 0 {
			return rem
		}
	}
	return c.spec.RoundExecs
}

// genRangeLocked returns the round index range of generation g among
// currently scheduled rounds.
func (c *Coordinator) genRangeLocked(g int) (lo, hi int) {
	lo = g * c.spec.GenRounds
	hi = lo + c.spec.GenRounds
	if hi > len(c.rounds) {
		hi = len(c.rounds)
	}
	return lo, hi
}

// foldLocked advances the generation barrier as far as the resolved rounds
// allow. For each fully resolved generation it absorbs the credited rounds'
// corpus candidates in canonical order — sorted by (FNV-64a of text, text),
// admitted iff still carrying an unseen signature — and opens minimization
// tasks for first-seen violation clusters. Caller holds c.mu.
func (c *Coordinator) foldLocked() {
	for {
		g := c.foldedGensLocked()
		lo, hi := c.genRangeLocked(g)
		if lo >= hi {
			return // generation not scheduled (yet)
		}
		for r := lo; r < hi; r++ {
			if s := c.rounds[r].state; s != roundDone && s != roundDropped {
				return // generation still has unresolved rounds
			}
		}
		var cands []CorpusEntry
		var viols []FuzzViolation
		for r := lo; r < hi; r++ {
			if c.rounds[r].state != roundDone {
				continue
			}
			cands = append(cands, c.rounds[r].result.NewEntries...)
			viols = append(viols, c.rounds[r].result.Violations...)
		}
		sort.Slice(cands, func(i, j int) bool {
			ki, kj := entryKey(cands[i]), entryKey(cands[j])
			if ki != kj {
				return ki < kj
			}
			return cands[i].Text < cands[j].Text
		})
		admitted := 0
		for _, e := range cands {
			novel := false
			for _, s := range e.Sigs {
				if !c.coverage[s] {
					novel = true
					break
				}
			}
			if !novel {
				continue
			}
			for _, s := range e.Sigs {
				c.coverage[s] = true
			}
			e.Sum = EntrySum(e)
			c.corpus = append(c.corpus, e)
			admitted++
		}
		c.genCut = append(c.genCut, len(c.corpus))
		c.log("fold: generation %d closed (rounds [%d,%d)): +%d corpus entries (%d total, %d edges)",
			g, lo, hi, admitted, len(c.corpus), len(c.coverage))

		// First-seen clusters open minimization tasks. The representative is
		// the lexicographically smallest reproducer text in this generation —
		// stable under any arrival order — and ids follow sorted cluster-key
		// order, so the whole queue is a pure function of the fold.
		rep := map[string]string{}
		for _, v := range viols {
			key := v.ClusterKey()
			if c.clusterSeen[key] {
				continue
			}
			if cur, ok := rep[key]; !ok || v.Text < cur {
				rep[key] = v.Text
			}
		}
		keys := make([]string, 0, len(rep))
		for k := range rep {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			c.clusterSeen[k] = true
			m := &minTask{id: len(c.mins), cluster: k, text: rep[k]}
			c.mins = append(c.mins, m)
			c.log("minimize: task %d opened for cluster %q", m.id, k)
		}
	}
}

// extendScheduleLocked appends one more generation of rounds in duration
// mode when the previous ones are fully folded and the wall-clock budget is
// still open. Caller holds c.mu.
func (c *Coordinator) extendScheduleLocked(now time.Time) {
	if c.execMode || c.budgetClosed {
		return
	}
	if now.Sub(c.soakStart) >= time.Duration(c.spec.BudgetNanos) {
		c.budgetClosed = true
		c.log("budget: wall-clock budget spent; no new generations")
		return
	}
	if len(c.rounds) != c.foldedGensLocked()*c.spec.GenRounds {
		return // the current generation block is still in flight
	}
	c.rounds = append(c.rounds, make([]roundSlot, c.spec.GenRounds)...)
	c.totalRounds = len(c.rounds)
}

// completedLocked reports whether the soak is finished: every scheduled
// round resolved and folded, the budget closed (duration mode), and every
// minimization task done. Caller holds c.mu.
func (c *Coordinator) completedLocked() bool {
	if !c.execMode && !c.budgetClosed {
		return false
	}
	if c.foldedGensLocked()*c.spec.GenRounds < len(c.rounds) {
		return false
	}
	for _, m := range c.mins {
		if m.state != minDone {
			return false
		}
	}
	return true
}

func (c *Coordinator) maybeCompleteLocked() {
	if c.failed != nil || c.completedLocked() {
		c.complete()
	}
}

// reclaimLocked reverts expired leases for re-dispatch; each expiry is a
// failed dispatch attempt. Caller holds c.mu.
func (c *Coordinator) reclaimLocked(now time.Time) {
	for i := range c.rounds {
		s := &c.rounds[i]
		if s.state == roundLeased && now.After(s.deadline) {
			c.failRoundLocked(i, s.worker, "lease expired (worker gone or stalled)")
		}
	}
	for _, m := range c.mins {
		if m.state == minLeased && now.After(m.deadline) {
			c.failMinLocked(m, m.worker, "lease expired (worker gone or stalled)")
		}
	}
}

// failRoundLocked records one failed dispatch attempt for a leased round:
// revert to pending, or drop once the attempt budget is spent. A drop
// resolves the round for the generation barrier, is persisted (the fold
// depends on it), journaled, and marks the soak degraded. Caller holds c.mu.
func (c *Coordinator) failRoundLocked(i int, worker, cause string) {
	s := &c.rounds[i]
	s.attempts++
	s.lastErr = cause
	s.worker = worker
	if s.attempts < c.retries {
		c.log("round %d attempt %d/%d failed (worker %s): %s — re-dispatching",
			i, s.attempts, c.retries, worker, cause)
		s.state = roundPending
		c.redispatched++
		return
	}
	s.state = roundDropped
	c.roundsDropped++
	d := RoundDrop{Round: i, Worker: worker, Err: cause, Attempts: s.attempts}
	c.log("round DROPPED: round %d after %d failed attempts, last worker %q: %s",
		i, s.attempts, worker, cause)
	c.journal.Emit(obs.Event{
		Type: "fuzz-round-drop", FS: c.spec.FS, Workload: "fuzz",
		Worker: worker, Sys: -1, Rank: i, Detail: cause,
	})
	if err := c.ckpt.AppendDrop(d); err != nil && c.failed == nil {
		c.failed = err
	}
	c.foldLocked()
	c.maybeCompleteLocked()
}

// failMinLocked is failRoundLocked for minimization tasks. A spent task
// resolves done-unverified: the census falls back to the unminimized
// representative rather than stalling the soak. Caller holds c.mu.
func (c *Coordinator) failMinLocked(m *minTask, worker, cause string) {
	m.attempts++
	m.lastErr = cause
	m.worker = worker
	if m.attempts < c.retries {
		c.log("minimize task %d attempt %d/%d failed (worker %s): %s — re-dispatching",
			m.id, m.attempts, c.retries, worker, cause)
		m.state = minPending
		c.redispatched++
		return
	}
	m.state = minDone
	m.dropped = true
	c.log("minimize task %d DROPPED after %d failed attempts: census keeps the unminimized reproducer", m.id, m.attempts)
	c.journal.Emit(obs.Event{
		Type: "fuzz-min-drop", FS: c.spec.FS, Workload: "fuzz",
		Worker: worker, Sys: -1, Rank: m.id, Detail: m.cluster + ": " + cause,
	})
	if err := c.ckpt.AppendMinDrop(m.cluster); err != nil && c.failed == nil {
		c.failed = err
	}
	c.maybeCompleteLocked()
}

// Lease hands out the next unit of fuzzing work: minimization tasks first
// (they gate completion and are cheap), then the lowest pending round whose
// generation is open. A worker that re-requests while still holding a lease
// gets the same unit back with a fresh deadline — the recovery path for a
// lease response discarded as corrupt.
func (c *Coordinator) Lease(req FuzzLeaseRequest) (FuzzLeaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.SpecHash != c.info.SuiteHash {
		c.rejected++
		return FuzzLeaseResponse{}, fmt.Errorf(
			"spec fingerprint mismatch: coordinator has %s, worker %q sent %s — fuzz specs differ, refusing to merge incomparable results",
			c.info.SuiteHash, req.Worker, req.SpecHash)
	}
	if c.draining || c.failed != nil || c.completedLocked() {
		return FuzzLeaseResponse{Status: campaign.LeaseDone}, nil
	}
	now := time.Now()
	c.reclaimLocked(now)
	c.workers[req.Worker] = now

	// Re-grant a unit this worker still holds (it would not ask otherwise).
	for _, m := range c.mins {
		if m.state == minLeased && m.worker == req.Worker {
			return c.grantMinLocked(m, req, now), nil
		}
	}
	for i := range c.rounds {
		if c.rounds[i].state == roundLeased && c.rounds[i].worker == req.Worker {
			return c.grantRoundLocked(i, req, now), nil
		}
	}

	for _, m := range c.mins {
		if m.state == minPending {
			return c.grantMinLocked(m, req, now), nil
		}
	}
	c.extendScheduleLocked(now)
	open := c.foldedGensLocked()
	for i := range c.rounds {
		if c.rounds[i].state != roundPending {
			continue
		}
		if c.genOf(i) > open {
			break // generation barrier: later rounds wait for the fold
		}
		return c.grantRoundLocked(i, req, now), nil
	}
	c.maybeCompleteLocked()
	if c.completedLocked() {
		return FuzzLeaseResponse{Status: campaign.LeaseDone}, nil
	}
	return FuzzLeaseResponse{Status: campaign.LeaseWait}, nil
}

// grantRoundLocked leases round i, shipping the corpus suffix the worker is
// missing. Caller holds c.mu.
func (c *Coordinator) grantRoundLocked(i int, req FuzzLeaseRequest, now time.Time) FuzzLeaseResponse {
	s := &c.rounds[i]
	s.state = roundLeased
	s.worker = req.Worker
	s.deadline = now.Add(c.leaseTTL)
	s.leasedAt = now
	s.lastBeat = now
	s.progress = 0
	cut := c.genCut[c.genOf(i)]
	base := req.Cursor
	if base > cut {
		base = cut
	}
	if base < 0 {
		base = 0
	}
	c.log("lease: round %d (gen %d, %d execs, corpus cut %d) -> %s (ttl %v)",
		i, c.genOf(i), c.roundExecsLocked(i), cut, req.Worker, c.leaseTTL)
	return FuzzLeaseResponse{
		Status: LeaseRound,
		Round:  i,
		Execs:  c.roundExecsLocked(i),
		Seed:   RoundSeed(c.spec.FuzzSeed, i),
		Corpus: append([]CorpusEntry(nil), c.corpus[base:cut]...),
		Base:   base,
		Cursor: cut,
		TTLNanos: int64(c.leaseTTL),
	}
}

// grantMinLocked leases minimization task m. Caller holds c.mu.
func (c *Coordinator) grantMinLocked(m *minTask, req FuzzLeaseRequest, now time.Time) FuzzLeaseResponse {
	m.state = minLeased
	m.worker = req.Worker
	m.deadline = now.Add(c.leaseTTL)
	m.leasedAt = now
	m.lastBeat = now
	c.log("lease: minimize task %d (cluster %q) -> %s (ttl %v)", m.id, m.cluster, req.Worker, c.leaseTTL)
	return FuzzLeaseResponse{
		Status:     LeaseMinimize,
		MinID:      m.id,
		MinCluster: m.cluster,
		MinText:    m.text,
		MinBudget:  c.spec.MinExecs,
		TTLNanos:   int64(c.leaseTTL),
	}
}

// Credit records one result, at most once per unit: round results feed the
// generation fold, minimization results close their tasks. Duplicate
// results are discarded (they are byte-identical by the determinism
// contract — counting both would double-credit); error payloads are failed
// dispatch attempts.
func (c *Coordinator) Credit(p *FuzzResult) (campaign.CreditResponse, error) {
	switch p.Kind {
	case ResultRound:
		return c.creditRound(p)
	case ResultMinimize:
		return c.creditMin(p)
	default:
		c.mu.Lock()
		c.rejected++
		c.mu.Unlock()
		return campaign.CreditResponse{}, fmt.Errorf("unknown result kind %q", p.Kind)
	}
}

func (c *Coordinator) creditRound(p *FuzzResult) (campaign.CreditResponse, error) {
	c.mu.Lock()
	if p.SpecHash != c.info.SuiteHash {
		c.rejected++
		c.mu.Unlock()
		return campaign.CreditResponse{}, fmt.Errorf(
			"spec fingerprint mismatch: coordinator has %s, worker %q sent %s — discarding result",
			c.info.SuiteHash, p.Worker, p.SpecHash)
	}
	if p.Round < 0 || p.Round >= len(c.rounds) {
		c.rejected++
		c.mu.Unlock()
		return campaign.CreditResponse{}, fmt.Errorf("round %d out of range [0,%d)", p.Round, len(c.rounds))
	}
	slot := &c.rounds[p.Round]
	if p.Err != "" {
		if slot.state != roundLeased || slot.worker != p.Worker {
			c.mu.Unlock()
			c.log("stale error payload for round %d from %s: discarded", p.Round, p.Worker)
			return campaign.CreditResponse{Accepted: false, Duplicate: true}, nil
		}
		c.failRoundLocked(p.Round, p.Worker, p.Err)
		dropped := slot.state == roundDropped
		done := c.completedLocked()
		c.mu.Unlock()
		if done {
			c.complete()
		}
		return campaign.CreditResponse{Accepted: false, Quarantined: dropped, Done: done}, nil
	}
	if slot.state == roundDropped {
		c.duplicates++
		c.mu.Unlock()
		c.log("result for dropped round %d from %s: discarded", p.Round, p.Worker)
		return campaign.CreditResponse{Accepted: false, Duplicate: true, Quarantined: true}, nil
	}
	if slot.state == roundDone {
		c.duplicates++
		c.mu.Unlock()
		c.log("duplicate result for round %d from %s: discarded", p.Round, p.Worker)
		return campaign.CreditResponse{Accepted: false, Duplicate: true}, nil
	}
	c.creditRoundLocked(slot, p)
	c.perWorker[p.Worker]++
	c.workers[p.Worker] = time.Now()
	if err := c.ckpt.AppendRound(p); err != nil {
		// A checkpoint that silently stops recording is worse than a failed
		// soak: resume would re-run rounds it believes missing and fold a
		// corpus the recorded rounds never saw.
		if c.failed == nil {
			c.failed = err
		}
		c.mu.Unlock()
		c.complete()
		return campaign.CreditResponse{Accepted: false, Done: true}, nil
	}
	c.foldLocked()
	done := c.completedLocked()
	credited, total := c.roundsCredited, len(c.rounds)
	c.mu.Unlock()
	c.log("credit: round %d from %s (%d/%d rounds)", p.Round, p.Worker, credited, total)
	if done {
		c.complete()
	}
	return campaign.CreditResponse{Accepted: true, Done: done}, nil
}

// creditRoundLocked applies a round result to the slot and the running
// totals — shared by the wire path and checkpoint replay. Caller holds c.mu.
func (c *Coordinator) creditRoundLocked(slot *roundSlot, p *FuzzResult) {
	slot.state = roundDone
	slot.worker = p.Worker
	slot.result = p
	c.roundsCredited++
	c.execs += p.Execs
	c.statesChecked += p.StatesChecked
	c.retriedChecks += p.RetriedChecks
	c.quarantinedChecks += p.QuarantinedChecks
	if p.Obs != nil {
		if c.obsMerged == nil {
			c.obsMerged = &obs.Snapshot{}
		}
		c.obsMerged.Merge(*p.Obs)
	}
}

func (c *Coordinator) creditMin(p *FuzzResult) (campaign.CreditResponse, error) {
	c.mu.Lock()
	if p.SpecHash != c.info.SuiteHash {
		c.rejected++
		c.mu.Unlock()
		return campaign.CreditResponse{}, fmt.Errorf(
			"spec fingerprint mismatch: coordinator has %s, worker %q sent %s — discarding result",
			c.info.SuiteHash, p.Worker, p.SpecHash)
	}
	if p.MinID < 0 || p.MinID >= len(c.mins) {
		c.rejected++
		c.mu.Unlock()
		return campaign.CreditResponse{}, fmt.Errorf("minimize task %d out of range [0,%d)", p.MinID, len(c.mins))
	}
	m := c.mins[p.MinID]
	if p.MinCluster != m.cluster {
		c.rejected++
		c.mu.Unlock()
		return campaign.CreditResponse{}, fmt.Errorf(
			"minimize task %d cluster mismatch: coordinator has %q, result says %q", p.MinID, m.cluster, p.MinCluster)
	}
	if p.Err != "" {
		if m.state != minLeased || m.worker != p.Worker {
			c.mu.Unlock()
			c.log("stale error payload for minimize task %d from %s: discarded", p.MinID, p.Worker)
			return campaign.CreditResponse{Accepted: false, Duplicate: true}, nil
		}
		c.failMinLocked(m, p.Worker, p.Err)
		done := c.completedLocked()
		c.mu.Unlock()
		if done {
			c.complete()
		}
		return campaign.CreditResponse{Accepted: false, Quarantined: m.dropped, Done: done}, nil
	}
	if m.state == minDone {
		c.duplicates++
		c.mu.Unlock()
		c.log("duplicate result for minimize task %d from %s: discarded", p.MinID, p.Worker)
		return campaign.CreditResponse{Accepted: false, Duplicate: true}, nil
	}
	c.creditMinLocked(m, p)
	c.perWorker[p.Worker]++
	c.workers[p.Worker] = time.Now()
	if err := c.ckpt.AppendMin(p); err != nil {
		if c.failed == nil {
			c.failed = err
		}
		c.mu.Unlock()
		c.complete()
		return campaign.CreditResponse{Accepted: false, Done: true}, nil
	}
	done := c.completedLocked()
	c.mu.Unlock()
	c.log("credit: minimize task %d from %s (verified=%v)", p.MinID, p.Worker, p.MinVerified)
	if done {
		c.complete()
	}
	return campaign.CreditResponse{Accepted: true, Done: done}, nil
}

// creditMinLocked applies a minimization result — shared by the wire path
// and checkpoint replay. Caller holds c.mu.
func (c *Coordinator) creditMinLocked(m *minTask, p *FuzzResult) {
	m.state = minDone
	m.worker = p.Worker
	m.verified = p.MinVerified
	m.minText = p.MinText
	m.minExecs = p.MinExecs
}

// Heartbeat extends a live lease; refusal tells the worker it lost the
// lease and should abandon the unit.
func (c *Coordinator) Heartbeat(req FuzzHeartbeat) (campaign.HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.SpecHash != c.info.SuiteHash {
		c.rejected++
		return campaign.HeartbeatResponse{}, fmt.Errorf(
			"spec fingerprint mismatch: coordinator has %s, worker %q sent %s — refusing heartbeat",
			c.info.SuiteHash, req.Worker, req.SpecHash)
	}
	c.workers[req.Worker] = time.Now()
	now := time.Now()
	switch req.Kind {
	case ResultRound:
		if req.ID < 0 || req.ID >= len(c.rounds) {
			return campaign.HeartbeatResponse{}, fmt.Errorf("round %d out of range [0,%d)", req.ID, len(c.rounds))
		}
		s := &c.rounds[req.ID]
		if s.state != roundLeased || s.worker != req.Worker || now.After(s.deadline) {
			return campaign.HeartbeatResponse{Extended: false}, nil
		}
		s.deadline = now.Add(c.leaseTTL)
		s.lastBeat = now
		if req.Execs > s.progress {
			s.progress = req.Execs
		}
	case ResultMinimize:
		if req.ID < 0 || req.ID >= len(c.mins) {
			return campaign.HeartbeatResponse{}, fmt.Errorf("minimize task %d out of range [0,%d)", req.ID, len(c.mins))
		}
		m := c.mins[req.ID]
		if m.state != minLeased || m.worker != req.Worker || now.After(m.deadline) {
			return campaign.HeartbeatResponse{Extended: false}, nil
		}
		m.deadline = now.Add(c.leaseTTL)
		m.lastBeat = now
	default:
		return campaign.HeartbeatResponse{}, fmt.Errorf("unknown heartbeat kind %q", req.Kind)
	}
	c.heartbeats++
	return campaign.HeartbeatResponse{Extended: true, TTLNanos: int64(c.leaseTTL)}, nil
}

// RejectResult records a result rejected at the wire boundary as a failed
// dispatch attempt when the claimed identity matches a live lease.
func (c *Coordinator) RejectResult(kind string, id int, worker, cause string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.badPayloads++
	switch kind {
	case ResultRound:
		if id < 0 || id >= len(c.rounds) {
			return
		}
		s := &c.rounds[id]
		if s.state != roundLeased || s.worker != worker {
			return
		}
		c.failRoundLocked(id, worker, cause)
	case ResultMinimize:
		if id < 0 || id >= len(c.mins) {
			return
		}
		m := c.mins[id]
		if m.state != minLeased || m.worker != worker {
			return
		}
		c.failMinLocked(m, worker, cause)
	}
}

// Degraded reports whether the soak dropped rounds: the census is missing
// their fuzzing work, and the CLI exits with the degraded code.
func (c *Coordinator) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundsDropped > 0
}

// Stats snapshots the control-plane counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	per := make(map[string]int, len(c.perWorker))
	for k, v := range c.perWorker {
		per[k] = v
	}
	mDone, mDropped := 0, 0
	for _, m := range c.mins {
		if m.state == minDone {
			mDone++
		}
		if m.dropped {
			mDropped++
		}
	}
	return Stats{
		Rounds:         len(c.rounds),
		RoundsCredited: c.roundsCredited,
		RoundsDropped:  c.roundsDropped,
		MinTasks:       len(c.mins),
		MinDone:        mDone,
		MinDropped:     mDropped,
		Resumed:        c.resumed,
		Redispatched:   c.redispatched,
		Duplicates:     c.duplicates,
		Rejected:       c.rejected,
		BadPayloads:    c.badPayloads,
		Heartbeats:     c.heartbeats,
		Generations:    c.foldedGensLocked(),
		PerWorker:      per,
	}
}

func minDone2() minState { return minDone }

// Census folds the credited rounds — in round order, which checkpoint
// replay and live crediting both preserve — into the deduplicated bug
// census. With an exec budget the value is a pure function of the spec;
// with a duration budget it is still independent of result arrival order
// over the same credited round set.
func (c *Coordinator) Census() report.FuzzCensus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.censusLocked()
}

func (c *Coordinator) censusLocked() report.FuzzCensus {
	var events []obs.Event
	rep := map[string]string{}
	for i := range c.rounds {
		if c.rounds[i].state != roundDone {
			continue
		}
		for _, v := range c.rounds[i].result.Violations {
			events = append(events, v.Event())
			key := v.ClusterKey()
			if cur, ok := rep[key]; !ok || v.Text < cur {
				rep[key] = v.Text
			}
		}
	}
	clusters := report.TriageEvents(events)
	minByCluster := map[string]*minTask{}
	minVerified := 0
	for _, m := range c.mins {
		minByCluster[m.cluster] = m
		if m.verified {
			minVerified++
		}
	}
	out := report.FuzzCensus{
		SpecHash:          c.info.SuiteHash,
		FS:                c.spec.FS,
		Bugs:              c.spec.Bugs,
		App:               c.spec.App,
		BudgetExecs:       c.spec.BudgetExecs,
		BudgetNanos:       c.spec.BudgetNanos,
		Execs:             c.execs,
		StatesChecked:     c.statesChecked,
		QuarantinedChecks: c.quarantinedChecks,
		RoundsCredited:    c.roundsCredited,
		RoundsDropped:     c.roundsDropped,
		CorpusSize:        len(c.corpus),
		CoverageEdges:     len(c.coverage),
		MinTasks:          len(c.mins),
		MinVerified:       minVerified,
	}
	for _, tc := range clusters {
		key := tc.Kind + "|" + tc.FS + "|" + tc.Prefix
		b := report.FuzzBug{TriageCluster: tc, Reproducer: rep[key]}
		if m := minByCluster[key]; m != nil && m.verified && m.minText != "" {
			b.Reproducer = m.minText
			b.Minimized = true
			b.Verified = true
		}
		out.Clusters = append(out.Clusters, b)
	}
	return out
}

// MergedObs is the soak's metrics snapshot: the merged per-round engine
// collectors plus the fleet-level series (fuzz-execs, corpus-entries,
// coverage-edges, distinct-bugs) /debug/metrics exposes.
func (c *Coordinator) MergedObs() *obs.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &obs.Snapshot{}
	if c.obsMerged != nil {
		s.Merge(*c.obsMerged)
	}
	if s.Counters == nil {
		s.Counters = make(map[string]int64, 4)
	}
	cen := c.censusLocked()
	s.Counters[obs.CtrFuzzExecs.String()] = int64(c.execs)
	s.Counters[obs.CtrCorpusEntries.String()] = int64(len(c.corpus))
	s.Counters[obs.CtrCoverageEdges.String()] = int64(len(c.coverage))
	s.Counters[obs.CtrDistinctBugs.String()] = int64(len(cen.Clusters))
	return s
}

// Corpus returns a copy of the canonical corpus log (tests, corpus export).
func (c *Coordinator) Corpus() []CorpusEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CorpusEntry(nil), c.corpus...)
}

// Drain stops issuing new leases; in-flight units may still credit.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
}

func (c *Coordinator) leasedLocked() int {
	n := 0
	for i := range c.rounds {
		if c.rounds[i].state == roundLeased {
			n++
		}
	}
	for _, m := range c.mins {
		if m.state == minLeased {
			n++
		}
	}
	return n
}

// Wait blocks until the soak completes, fails, or ctx is cancelled.
// Cancellation is the graceful path: stop leasing, keep crediting in-flight
// units to the checkpoint until they report or expire, return the partial
// census with ctx's error.
func (c *Coordinator) Wait(ctx context.Context) (report.FuzzCensus, error) {
	select {
	case <-c.doneCh:
		return c.finish(nil)
	case <-ctx.Done():
	}
	c.Drain()
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-c.doneCh:
			return c.finish(nil)
		case <-tick.C:
			c.mu.Lock()
			c.reclaimLocked(time.Now())
			leased := c.leasedLocked()
			c.mu.Unlock()
			if leased == 0 {
				return c.finish(ctx.Err())
			}
		}
	}
}

func (c *Coordinator) finish(err error) (report.FuzzCensus, error) {
	c.mu.Lock()
	failed := c.failed
	c.mu.Unlock()
	if failed != nil {
		return report.FuzzCensus{}, failed
	}
	return c.Census(), err
}

// Close releases the checkpoint file handle.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	ck := c.ckpt
	c.ckpt = nil
	c.mu.Unlock()
	return ck.Close()
}

// attachCheckpoint loads, validates, and replays the checkpoint, then opens
// it for appending. Replay pushes the recorded round credits and drops
// through the same fold state machine as live crediting — the fold is a
// pure function of the resolved round set, so the reconstructed corpus,
// coverage, and minimization queue are exactly the dead coordinator's.
func (c *Coordinator) attachCheckpoint(path string) error {
	st, err := LoadCheckpoint(path)
	if err != nil {
		return err
	}
	if err := st.Validate(c.info.SuiteHash); err != nil {
		return err
	}
	if st.Skipped > 0 {
		c.log("checkpoint: skipped %d corrupt/torn lines in %s", st.Skipped, path)
	}
	if st.Header != nil && st.Header.StartUnixNanos != 0 {
		// Duration budgets measure wall-clock from the soak's original start:
		// a killed-and-resumed soak keeps its deadline instead of restarting
		// the clock.
		c.soakStart = time.Unix(0, st.Header.StartUnixNanos)
	}

	// Rounds first (credits, then drops), in round order; the fold advances
	// as generations resolve. ensureRoundLocked grows the duration-mode
	// schedule to cover recorded indices.
	sort.Slice(st.Rounds, func(i, j int) bool { return st.Rounds[i].Round < st.Rounds[j].Round })
	for _, p := range st.Rounds {
		if p.SpecHash != c.info.SuiteHash || p.Round < 0 || !c.ensureRoundLocked(p.Round) {
			c.log("checkpoint: ignoring foreign round record (round %d, hash %s)", p.Round, p.SpecHash)
			continue
		}
		slot := &c.rounds[p.Round]
		if slot.state == roundDone {
			continue
		}
		c.creditRoundLocked(slot, p)
		c.resumed++
		c.perWorker["checkpoint"]++
	}
	for _, d := range st.Drops {
		if d.Round < 0 || !c.ensureRoundLocked(d.Round) {
			c.log("checkpoint: ignoring out-of-range drop record (round %d)", d.Round)
			continue
		}
		slot := &c.rounds[d.Round]
		if slot.state == roundDone || slot.state == roundDropped {
			continue
		}
		slot.state = roundDropped
		slot.worker = d.Worker
		slot.lastErr = d.Err
		slot.attempts = d.Attempts
		c.roundsDropped++
	}
	c.foldLocked()

	// Minimization records match by cluster key: task ids are deterministic,
	// but the key is self-describing and survives id-order evolution.
	byCluster := map[string]*minTask{}
	for _, m := range c.mins {
		byCluster[m.cluster] = m
	}
	for _, p := range st.Mins {
		m := byCluster[p.MinCluster]
		if m == nil || p.SpecHash != c.info.SuiteHash {
			c.log("checkpoint: ignoring foreign minimize record (cluster %q)", p.MinCluster)
			continue
		}
		if m.state == minDone {
			continue
		}
		c.creditMinLocked(m, p)
		c.resumed++
		c.perWorker["checkpoint"]++
	}
	for _, cluster := range st.MinDrops {
		m := byCluster[cluster]
		if m == nil || m.state == minDone {
			continue
		}
		m.state = minDone
		m.dropped = true
	}

	fresh := st.Header == nil
	header := fleetCkptLine{
		CampaignID:     c.info.CampaignID,
		SpecHash:       c.info.SuiteHash,
		FS:             c.spec.FS,
		RoundExecs:     c.spec.RoundExecs,
		GenRounds:      c.spec.GenRounds,
		BudgetExecs:    c.spec.BudgetExecs,
		BudgetNanos:    c.spec.BudgetNanos,
		StartUnixNanos: c.soakStart.UnixNano(),
	}
	ck, err := OpenCheckpoint(path, header, fresh)
	if err != nil {
		return err
	}
	c.ckpt = ck
	if c.resumed > 0 {
		c.log("checkpoint: resumed %d units from %s (%d generations folded, corpus %d)",
			c.resumed, path, c.foldedGensLocked(), len(c.corpus))
	}
	c.maybeCompleteLocked()
	return nil
}

// ensureRoundLocked grows the duration-mode schedule (whole generations at
// a time) to cover round r; in exec mode it only reports whether r is in
// range. Caller owns the coordinator exclusively (construction) or holds
// c.mu.
func (c *Coordinator) ensureRoundLocked(r int) bool {
	if r < len(c.rounds) {
		return true
	}
	if c.execMode {
		return false
	}
	need := (c.genOf(r) + 1) * c.spec.GenRounds
	c.rounds = append(c.rounds, make([]roundSlot, need-len(c.rounds))...)
	c.totalRounds = len(c.rounds)
	return true
}

// --- HTTP surface -------------------------------------------------------

// maxResultBody bounds one result POST; aligned with maxCkptLine.
const maxResultBody = maxCkptLine

// ServeHTTP serves the fuzzing wire protocol.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, r *http.Request) {
	campaign.WriteJSON(w, http.StatusOK, c.info)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req FuzzLeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		campaign.WriteJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad lease request: %v", err))
		return
	}
	resp, err := c.Lease(req)
	if err != nil {
		campaign.WriteJSONError(w, http.StatusConflict, err.Error())
		return
	}
	campaign.WriteJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	// Results mutate the corpus and census, so the wire boundary is
	// paranoid, like the campaign's: the body must parse AND match its
	// FNV-64a self-checksum, or it is a failed attempt, never a mis-credit.
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxResultBody))
	if err != nil {
		c.RejectResult("", -1, "", "truncated result body")
		campaign.WriteJSONError(w, http.StatusBadRequest, fmt.Sprintf("truncated result body: %v", err))
		return
	}
	var p FuzzResult
	if err := json.Unmarshal(data, &p); err != nil {
		c.RejectResult("", -1, "", "corrupt result body")
		campaign.WriteJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad result payload: %v", err))
		return
	}
	if want := ResultSum(&p); p.Sum == "" || p.Sum != want {
		cause := fmt.Sprintf("payload checksum mismatch: body carries %q, content hashes to %s", p.Sum, want)
		id := p.Round
		if p.Kind == ResultMinimize {
			id = p.MinID
		}
		c.RejectResult(p.Kind, id, p.Worker, cause)
		campaign.WriteJSONError(w, http.StatusBadRequest, cause)
		return
	}
	resp, err := c.Credit(&p)
	if err != nil {
		campaign.WriteJSONError(w, http.StatusConflict, err.Error())
		return
	}
	campaign.WriteJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req FuzzHeartbeat
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		campaign.WriteJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad heartbeat request: %v", err))
		return
	}
	resp, err := c.Heartbeat(req)
	if err != nil {
		campaign.WriteJSONError(w, http.StatusConflict, err.Error())
		return
	}
	campaign.WriteJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s := c.MergedObs()
	w.Header().Set("Content-Type", obs.MetricsContentType)
	s.WriteMetrics(w)
}
