package report

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// FuzzBug is one deduplicated bug in a fleet-fuzzing census: a triage
// cluster plus its reproducer. Reproducer is the serialized workload
// (workload.Format); when Minimized it is the shrunk form, and Verified
// reports that the minimized workload was re-run and still tripped the same
// (kind, FS, trace prefix) cluster.
type FuzzBug struct {
	TriageCluster
	Reproducer string
	Minimized  bool
	Verified   bool
}

// FuzzCensus is everything FUZZCENSUS.md renders. Deliberately free of
// wall-clock fields: with an exec budget the census is a pure function of
// the fuzz spec, and two soaks over the same spec — whatever the worker
// count, arrival order, or coordinator kill pattern — must render
// byte-identical files.
type FuzzCensus struct {
	// Soak identity.
	SpecHash string
	FS       string
	Bugs     string
	App      string
	// Budget: exactly one of BudgetExecs / BudgetNanos is nonzero.
	BudgetExecs int
	BudgetNanos int64

	// Progress totals over credited rounds.
	Execs             int
	StatesChecked     int
	QuarantinedChecks int
	RoundsCredited    int
	// RoundsDropped counts rounds that spent their dispatch attempts — a
	// nonzero value means the soak completed degraded (like quarantined
	// campaign shards, the dropped rounds' work is simply missing).
	RoundsDropped int

	// Corpus accounting.
	CorpusSize    int
	CoverageEdges int

	// Minimization accounting.
	MinTasks    int
	MinVerified int

	Clusters []FuzzBug
}

// WriteFuzzCensus renders the deduplicated bug census as markdown. Same
// census value, same bytes — the distributed-determinism tests diff this
// output directly.
func WriteFuzzCensus(w io.Writer, c FuzzCensus) error {
	fmt.Fprintf(w, "# Chipmunk fleet fuzzing census\n\n")
	fmt.Fprintf(w, "- spec: `%s` (fs %s, bugs %s", c.SpecHash, c.FS, orNone(c.Bugs))
	if c.App != "" {
		fmt.Fprintf(w, ", app %s", c.App)
	}
	fmt.Fprintf(w, ")\n")
	switch {
	case c.BudgetExecs > 0:
		fmt.Fprintf(w, "- budget: %d execs\n", c.BudgetExecs)
	case c.BudgetNanos > 0:
		fmt.Fprintf(w, "- budget: %dns wall-clock\n", c.BudgetNanos)
	}
	fmt.Fprintf(w, "- progress: %d execs in %d rounds, %d crash states checked\n",
		c.Execs, c.RoundsCredited, c.StatesChecked)
	if c.QuarantinedChecks > 0 {
		fmt.Fprintf(w, "- sandbox: %d crash states quarantined\n", c.QuarantinedChecks)
	}
	if c.RoundsDropped > 0 {
		fmt.Fprintf(w, "- **DEGRADED**: %d rounds dropped after exhausting their dispatch attempts\n",
			c.RoundsDropped)
	}
	fmt.Fprintf(w, "- corpus: %d entries, %d coverage edges\n", c.CorpusSize, c.CoverageEdges)
	if c.MinTasks > 0 {
		fmt.Fprintf(w, "- minimization: %d/%d reproducers minimized and re-verified\n",
			c.MinVerified, c.MinTasks)
	}
	fmt.Fprintf(w, "\n## Distinct bugs: %d\n", len(c.Clusters))
	if len(c.Clusters) == 0 {
		fmt.Fprintf(w, "\nNo violations found.\n")
		return nil
	}
	for i, b := range c.Clusters {
		fmt.Fprintf(w, "\n### [%d] %s on %s — %d reports\n\n", i+1, b.Kind, b.FS, b.Count)
		if b.Prefix != "" {
			fmt.Fprintf(w, "- trace prefix: `%s`\n", b.Prefix)
		}
		if len(b.Workloads) > 0 {
			fmt.Fprintf(w, "- workloads (%d): %s\n", len(b.Workloads),
				strings.Join(capList(b.Workloads, 8), ", "))
		}
		if len(b.Phases) > 0 {
			fmt.Fprintf(w, "- crash phases: %s\n", strings.Join(b.Phases, "; "))
		}
		if b.Detail != "" {
			fmt.Fprintf(w, "- detail: %s\n", b.Detail)
		}
		if b.Reproducer != "" {
			label := "reproducer"
			if b.Minimized && b.Verified {
				label = "minimized reproducer (re-verified)"
			}
			fmt.Fprintf(w, "\n%s:\n\n```\n%s```\n", label, ensureNewline(b.Reproducer))
		}
	}
	return nil
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func ensureNewline(s string) string {
	if s == "" || s[len(s)-1] == '\n' {
		return s
	}
	return s + "\n"
}

// WriteFuzzCensus persists the census as FUZZCENSUS.md under the writer's
// root, returning the path.
func (w *Writer) WriteFuzzCensus(c FuzzCensus) (string, error) {
	var b strings.Builder
	if err := WriteFuzzCensus(&b, c); err != nil {
		return "", err
	}
	path := filepath.Join(w.root, "FUZZCENSUS.md")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", fmt.Errorf("report: %w", err)
	}
	return path, nil
}
