package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"chipmunk/internal/obs"
)

// This file renders span events ("span" journal lines, see obs.Tracer) as
// per-trace ASCII waterfalls plus a stage critical-path breakdown — the
// journaltool -timeline view. It consumes RAW journals: the canonical
// merged stream clears Time and DurNanos by design, so timelines are drawn
// from the per-worker (or local-run) files before merging.

// timelineBarWidth is the waterfall's bar column in characters.
const timelineBarWidth = 40

// timelineMaxRows caps the rows rendered per trace; the remainder is
// summarized in one "(N more spans)" line, never silently dropped.
const timelineMaxRows = 40

// WriteTimeline renders every trace found in events as a waterfall (spans
// in start order, bars scaled to the trace's wall-clock extent) followed by
// an aggregate per-stage breakdown of where the time went. Events that are
// not spans are ignored, so whole journals can be passed unfiltered.
// Returns the number of spans rendered (0 = the journal carries no spans,
// e.g. it was canonicalized, or the run traced nothing).
func WriteTimeline(w io.Writer, events []obs.Event) (int, error) {
	byTrace := map[string][]obs.Event{}
	total := 0
	for _, e := range events {
		if e.Type != "span" || e.Trace == "" {
			continue
		}
		byTrace[e.Trace] = append(byTrace[e.Trace], e)
		total++
	}
	if total == 0 {
		fmt.Fprintln(w, "timeline: no span events (canonicalized journal, or run traced nothing — pass raw per-worker journals)")
		return 0, nil
	}

	traces := make([]string, 0, len(byTrace))
	for id := range byTrace {
		traces = append(traces, id)
	}
	// Trace order: earliest span start, then trace ID — deterministic for a
	// given set of journals.
	sort.Slice(traces, func(i, j int) bool {
		ti, tj := earliestSpan(byTrace[traces[i]]), earliestSpan(byTrace[traces[j]])
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return traces[i] < traces[j]
	})

	fmt.Fprintf(w, "timeline: %d spans in %d traces\n", total, len(traces))
	for _, id := range traces {
		writeTraceWaterfall(w, id, byTrace[id])
	}
	writeStageBreakdown(w, byTrace)
	return total, nil
}

func earliestSpan(spans []obs.Event) time.Time {
	t := spans[0].Time
	for _, s := range spans[1:] {
		if s.Time.Before(t) {
			t = s.Time
		}
	}
	return t
}

// writeTraceWaterfall renders one trace: spans sorted by start time (ties
// broken by span ID for determinism), bars positioned and scaled against
// the trace's own [start, end] extent, names indented by tree depth.
func writeTraceWaterfall(w io.Writer, id string, spans []obs.Event) {
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Time.Equal(spans[j].Time) {
			return spans[i].Time.Before(spans[j].Time)
		}
		if spans[i].Name != spans[j].Name {
			return spans[i].Name < spans[j].Name
		}
		return spans[i].Span < spans[j].Span
	})
	start := spans[0].Time
	var end time.Time
	for _, s := range spans {
		if e := s.Time.Add(time.Duration(s.DurNanos)); e.After(end) {
			end = e
		}
	}
	extent := end.Sub(start)
	if extent <= 0 {
		extent = time.Nanosecond
	}
	depth := spanDepths(spans)

	fmt.Fprintf(w, "\ntrace %s: %d spans, %v\n", id, len(spans), extent.Round(time.Microsecond))
	rows := spans
	more := 0
	if len(rows) > timelineMaxRows {
		more = len(rows) - timelineMaxRows
		rows = rows[:timelineMaxRows]
	}
	for _, s := range rows {
		off := s.Time.Sub(start)
		dur := time.Duration(s.DurNanos)
		from := int(int64(timelineBarWidth) * int64(off) / int64(extent))
		width := int(int64(timelineBarWidth) * int64(dur) / int64(extent))
		if from >= timelineBarWidth {
			from = timelineBarWidth - 1
		}
		if width < 1 {
			width = 1
		}
		if from+width > timelineBarWidth {
			width = timelineBarWidth - from
		}
		bar := strings.Repeat(" ", from) + strings.Repeat("#", width) +
			strings.Repeat(" ", timelineBarWidth-from-width)
		label := strings.Repeat("  ", depth[s.Span]) + s.Name
		if s.Workload != "" {
			label += " " + s.Workload
		}
		if s.Name == "fence" {
			label += fmt.Sprintf(" f%d", s.Fence)
		}
		fmt.Fprintf(w, "  %9s %9s |%s| %s\n",
			"+"+off.Round(time.Microsecond).String(), dur.Round(time.Microsecond), bar, label)
	}
	if more > 0 {
		fmt.Fprintf(w, "  ... (%d more spans)\n", more)
	}
}

// spanDepths computes each span's tree depth from Parent links (roots are
// depth 0; an unknown parent — e.g. the row cap cut it — counts as a root).
func spanDepths(spans []obs.Event) map[string]int {
	parent := make(map[string]string, len(spans))
	for _, s := range spans {
		if _, ok := parent[s.Span]; !ok {
			parent[s.Span] = s.Parent
		}
	}
	depth := make(map[string]int, len(spans))
	for id := range parent {
		d, cur := 0, id
		for d < len(spans) { // bound: a cycle could only come from a corrupt journal
			p := parent[cur]
			if p == "" {
				break
			}
			if _, ok := parent[p]; !ok {
				break
			}
			d++
			cur = p
		}
		depth[id] = d
	}
	return depth
}

// writeStageBreakdown aggregates span durations by span name across all
// traces — the critical-path view of where a campaign's wall-clock went
// (check dominating oracle/record is the paper's expected shape; a fat
// wire:* row means the fleet is coordination-bound).
func writeStageBreakdown(w io.Writer, byTrace map[string][]obs.Event) {
	type agg struct {
		name  string
		count int
		nanos int64
		max   int64
	}
	byName := map[string]*agg{}
	for _, spans := range byTrace {
		for _, s := range spans {
			a := byName[s.Name]
			if a == nil {
				a = &agg{name: s.Name}
				byName[s.Name] = a
			}
			a.count++
			a.nanos += s.DurNanos
			if s.DurNanos > a.max {
				a.max = s.DurNanos
			}
		}
	}
	aggs := make([]*agg, 0, len(byName))
	var totalNanos int64
	for _, a := range byName {
		aggs = append(aggs, a)
		totalNanos += a.nanos
	}
	sort.Slice(aggs, func(i, j int) bool {
		if aggs[i].nanos != aggs[j].nanos {
			return aggs[i].nanos > aggs[j].nanos
		}
		return aggs[i].name < aggs[j].name
	})
	fmt.Fprintf(w, "\nstage breakdown (by span name, all traces):\n")
	for _, a := range aggs {
		share := 0.0
		if totalNanos > 0 {
			share = 100 * float64(a.nanos) / float64(totalNanos)
		}
		fmt.Fprintf(w, "  %-16s %6d spans  %12v total  %10v max  %5.1f%%\n",
			a.name, a.count, time.Duration(a.nanos).Round(time.Microsecond),
			time.Duration(a.max).Round(time.Microsecond), share)
	}
}
