package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chipmunk/internal/obs"
)

// TestJournalSummary: the digest covers runs, workloads, fences, and
// per-kind violation/quarantine tallies, and ranks slow workloads.
func TestJournalSummary(t *testing.T) {
	events := []obs.Event{
		{Type: "run", FS: "nova"},
		{Type: "workload", FS: "nova", Workload: "fast", States: 10, Violations: 0, DurNanos: 1e6},
		{Type: "workload", FS: "nova", Workload: "slow", States: 40, Violations: 2, DurNanos: 9e6},
		{Type: "fence", FS: "nova", Workload: "slow", Fence: 1, States: 5, Deduped: 2, DurNanos: 4e5},
		{Type: "violation", FS: "nova", Workload: "slow", Kind: "content-mismatch"},
		{Type: "violation", FS: "nova", Workload: "slow", Kind: "content-mismatch"},
		{Type: "quarantine", FS: "nova", Workload: "slow", Kind: "panic"},
		{Type: "retry", FS: "nova", Workload: "slow"},
	}
	var sb strings.Builder
	if err := WriteJournalSummary(&sb, events, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"journal: 8 events",
		"runs: nova",
		"workloads: 2 (50 crash states checked, 2 violations",
		"fences: 1 (5 states, 2 deduped",
		"content-mismatch=2",
		"quarantines by kind: panic=1",
		"sandbox retries: 1",
		"slowest workloads:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "WARNING") {
		t.Errorf("clean journal produced a warning:\n%s", out)
	}
	// "slow" must rank above "fast" in the outlier list.
	if strings.Index(out, "slow ") > strings.Index(out, "fast ") {
		t.Errorf("slowest-workload ranking wrong:\n%s", out)
	}
}

// TestJournalSummaryTolerant: corrupt and truncated lines — the tail of a
// journal from a killed run — are skipped with a warning, never an error
// or a panic.
func TestJournalSummaryTolerant(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	raw := `{"type":"run","fs":"pmfs"}
{"type":"workload","fs":"pmfs","workload":"w0","states":3,"dur_ns":1000}
{"type":"fence","fs":"pmfs","workload":"w0","fence":0,"st
this is not json at all
{"no_type_field":true}
`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := SummarizeJournalFile(&sb, path); err != nil {
		t.Fatalf("tolerant summary errored: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "journal: 2 events") {
		t.Errorf("expected 2 surviving events:\n%s", out)
	}
	if !strings.Contains(out, "WARNING: 3 corrupt/truncated lines skipped") {
		t.Errorf("missing corruption warning:\n%s", out)
	}

	if err := SummarizeJournalFile(&sb, filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("missing file did not error")
	}
}
