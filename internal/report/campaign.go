package report

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CampaignSummary is the distributed-run record persisted next to the bug
// reports: which campaign produced them, how the suite was sharded, and
// what the control plane saw. The struct is deliberately plain values (no
// campaign package types) so report stays importable from anywhere.
type CampaignSummary struct {
	CampaignID string
	FS         string
	Suite      string
	SuiteHash  string
	Workloads  int
	Shards     int
	ShardSize  int

	// Control-plane history: shards credited from the checkpoint at
	// startup, lease expiries re-dispatched, at-most-once discards, and
	// fingerprint-mismatch rejections.
	Resumed      int
	Redispatched int
	Duplicates   int
	Rejected     int
	// PerWorker counts shards credited per worker ID.
	PerWorker map[string]int

	// Fingerprint is the deterministic census identity — equal to the
	// serial run's fingerprint by the determinism contract, so two
	// CAMPAIGN.txt files from different cluster topologies diff clean.
	Fingerprint string
}

// WriteCampaignSummary persists the summary as CAMPAIGN.txt under the
// report root and returns its path.
func (w *Writer) WriteCampaignSummary(s CampaignSummary) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# Chipmunk distributed campaign %s\n\n", s.CampaignID)
	fmt.Fprintf(&b, "file system:      %s\n", s.FS)
	fmt.Fprintf(&b, "suite:            %s (%d workloads, fingerprint %s)\n", s.Suite, s.Workloads, s.SuiteHash)
	fmt.Fprintf(&b, "shards:           %d x %d workloads\n", s.Shards, s.ShardSize)
	fmt.Fprintf(&b, "resumed:          %d shards from checkpoint\n", s.Resumed)
	fmt.Fprintf(&b, "re-dispatched:    %d expired leases\n", s.Redispatched)
	fmt.Fprintf(&b, "duplicates:       %d results discarded (at-most-once)\n", s.Duplicates)
	fmt.Fprintf(&b, "rejected:         %d fingerprint mismatches\n", s.Rejected)
	workers := make([]string, 0, len(s.PerWorker))
	for wkr := range s.PerWorker {
		workers = append(workers, wkr)
	}
	sort.Strings(workers)
	b.WriteString("\nshards credited per worker:\n")
	for _, wkr := range workers {
		fmt.Fprintf(&b, "  %-24s %d\n", wkr, s.PerWorker[wkr])
	}
	if s.Fingerprint != "" {
		fmt.Fprintf(&b, "\ncensus fingerprint (matches the serial run byte-for-byte):\n%s\n",
			indent(strings.TrimRight(s.Fingerprint, "\n"), "  "))
	}
	path := filepath.Join(w.root, "CAMPAIGN.txt")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
