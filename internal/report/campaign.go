package report

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CampaignSummary is the distributed-run record persisted next to the bug
// reports: which campaign produced them, how the suite was sharded, and
// what the control plane saw. The struct is deliberately plain values (no
// campaign package types) so report stays importable from anywhere.
type CampaignSummary struct {
	CampaignID string
	FS         string
	Suite      string
	SuiteHash  string
	Workloads  int
	Shards     int
	ShardSize  int

	// Control-plane history: shards credited from the checkpoint at
	// startup, failed dispatch attempts re-dispatched, at-most-once
	// discards, fingerprint-mismatch rejections, result bodies rejected at
	// the wire (truncated/corrupt/checksum mismatch), and granted lease
	// extensions.
	Resumed      int
	Redispatched int
	Duplicates   int
	Rejected     int
	BadPayloads  int
	Heartbeats   int
	// PerWorker counts shards credited per worker ID.
	PerWorker map[string]int

	// Quarantined lists the shard-quarantine ledger: shards that exhausted
	// their dispatch attempts and were removed from the campaign. A
	// non-empty list means the census is partial (degraded), and the listed
	// slices went unchecked until re-run with -retry-quarantined.
	Quarantined []QuarantinedShard

	// Fingerprint is the deterministic census identity — equal to the
	// serial run's fingerprint by the determinism contract, so two
	// CAMPAIGN.txt files from different cluster topologies diff clean.
	Fingerprint string
}

// QuarantinedShard is one shard-quarantine ledger entry, in plain values
// (mirrors campaign.ShardQuarantine without importing it).
type QuarantinedShard struct {
	Shard    int
	Start    int
	End      int
	Worker   string
	Err      string
	Attempts int
}

// WriteCampaignSummary persists the summary as CAMPAIGN.txt under the
// report root and returns its path.
func (w *Writer) WriteCampaignSummary(s CampaignSummary) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# Chipmunk distributed campaign %s\n\n", s.CampaignID)
	fmt.Fprintf(&b, "file system:      %s\n", s.FS)
	fmt.Fprintf(&b, "suite:            %s (%d workloads, fingerprint %s)\n", s.Suite, s.Workloads, s.SuiteHash)
	fmt.Fprintf(&b, "shards:           %d x %d workloads\n", s.Shards, s.ShardSize)
	fmt.Fprintf(&b, "resumed:          %d shards from checkpoint\n", s.Resumed)
	fmt.Fprintf(&b, "re-dispatched:    %d expired leases\n", s.Redispatched)
	fmt.Fprintf(&b, "duplicates:       %d results discarded (at-most-once)\n", s.Duplicates)
	fmt.Fprintf(&b, "rejected:         %d fingerprint mismatches\n", s.Rejected)
	fmt.Fprintf(&b, "bad payloads:     %d result bodies rejected at the wire\n", s.BadPayloads)
	fmt.Fprintf(&b, "heartbeats:       %d lease extensions granted\n", s.Heartbeats)
	workers := make([]string, 0, len(s.PerWorker))
	for wkr := range s.PerWorker {
		workers = append(workers, wkr)
	}
	sort.Strings(workers)
	b.WriteString("\nshards credited per worker:\n")
	for _, wkr := range workers {
		fmt.Fprintf(&b, "  %-24s %d\n", wkr, s.PerWorker[wkr])
	}
	if len(s.Quarantined) > 0 {
		fmt.Fprintf(&b, "\nDEGRADED — quarantined shards (census excludes these slices; re-run with -retry-quarantined):\n")
		for _, q := range s.Quarantined {
			fmt.Fprintf(&b, "  shard %d [%d,%d): %d failed attempts, last worker %q: %s\n",
				q.Shard, q.Start, q.End, q.Attempts, q.Worker, q.Err)
		}
	}
	if s.Fingerprint != "" {
		fmt.Fprintf(&b, "\ncensus fingerprint (matches the serial run byte-for-byte):\n%s\n",
			indent(strings.TrimRight(s.Fingerprint, "\n"), "  "))
	}
	path := filepath.Join(w.root, "CAMPAIGN.txt")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
