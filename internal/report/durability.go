package report

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"chipmunk/internal/core"
)

// This file renders the application-durability report (`chipmunk -app=...
// -durability-report=DURABILITY.md`): an evidence-first markdown summary of
// the crash contract an application was checked against, the per-file-system
// verdicts, and pointers to the violating crash states — the shape durable
// KV stores publish for their own crash-recovery test results.

// contracts lists the KV durability contract in report order. The checker's
// Finding.Contract values index into it; unknown names still render (a new
// contract must never vanish from the report).
var contracts = []struct{ name, meaning string }{
	{"acked-durability", "every mutation acknowledged by a successful sync survives recovery"},
	{"seqno-prefix", "the recovered state is a prefix of the issued history — no holes, nothing from the future"},
	{"no-silent-corruption", "recovered values are byte-exact; torn or corrupt log tails are truncated, never returned"},
	{"recoverable", "recovery itself succeeds on every crash state"},
}

// DurabilityRun is one file system's slice of an application-durability
// campaign.
type DurabilityRun struct {
	FS            string
	Weak          bool // fsync-gated crash-point model (DAX systems)
	Workloads     int
	StatesChecked int
	Elapsed       time.Duration
	Violations    []core.Violation
}

// DurabilityReport is the input to WriteDurability: the campaign
// configuration plus every per-system run.
type DurabilityReport struct {
	App     string // -app selector ("kv")
	AppBugs string // -app-bugs spec ("none" unless bugs were seeded)
	Suite   string
	Cap     int
	Journal string // -journal path, "" if off
	Runs    []DurabilityRun
}

// WriteDurability renders the report to path. The content is deterministic
// for a deterministic campaign: no timestamps, violations in census order.
func WriteDurability(path string, rep DurabilityReport) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# Application crash-durability report: %s\n\n", rep.App)
	seeded := rep.AppBugs != "" && rep.AppBugs != "none"
	if seeded {
		fmt.Fprintf(&b, "> **Seeded-bug run** (`-app-bugs=%s`): violations below are expected — they prove the contract detects the defect.\n\n", rep.AppBugs)
	}
	fmt.Fprintf(&b, "Suite `%s` replayed through every crash state the engine enumerated (cap=%d in-flight writes), recovering the application on each state and checking its durability contract.\n\n", rep.Suite, rep.Cap)

	b.WriteString("## The contract\n\n")
	b.WriteString("A crash state passes only if all of the following hold after recovery:\n\n")
	for _, c := range contracts {
		fmt.Fprintf(&b, "- **%s** — %s.\n", c.name, c.meaning)
	}
	b.WriteString("\n")

	b.WriteString("## Verdicts\n\n")
	b.WriteString("| File system | Crash-point model | Workloads | Crash states | Violations | Status |\n")
	b.WriteString("|---|---|---:|---:|---:|---|\n")
	total := 0
	for _, r := range rep.Runs {
		model := "strong (every fence)"
		if r.Weak {
			model = "weak (fsync-gated)"
		}
		status := "✅ pass"
		if len(r.Violations) > 0 {
			status = "❌ FAIL"
			if seeded {
				status = "❌ flagged (expected)"
			}
		}
		fmt.Fprintf(&b, "| %s | %s | %d | %d | %d | %s |\n",
			r.FS, model, r.Workloads, r.StatesChecked, len(r.Violations), status)
		total += len(r.Violations)
	}
	b.WriteString("\n")

	b.WriteString("### Per-contract breakdown\n\n")
	byContract := map[string]int{}
	for _, r := range rep.Runs {
		for _, v := range r.Violations {
			name := v.Contract
			if name == "" {
				name = v.Kind.String()
			}
			byContract[name]++
		}
	}
	b.WriteString("| Contract | Violations | Status |\n|---|---:|---|\n")
	for _, c := range contracts {
		status := "✅ upheld"
		if byContract[c.name] > 0 {
			status = "❌ violated"
		}
		fmt.Fprintf(&b, "| %s | %d | %s |\n", c.name, byContract[c.name], status)
		delete(byContract, c.name)
	}
	// Anything the checker reported outside the KV contract vocabulary
	// (e.g. FS-oracle kinds from a mixed run) still gets a row.
	extra := make([]string, 0, len(byContract))
	for name := range byContract {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(&b, "| %s | %d | ❌ violated |\n", name, byContract[name])
	}
	b.WriteString("\n")

	if total > 0 {
		b.WriteString("## Evidence\n\n")
		b.WriteString("First reports per file system (full set in the engine output; each names the workload, the crash point, and the replayed in-flight subset):\n\n")
		const perFS = 3
		for _, r := range rep.Runs {
			if len(r.Violations) == 0 {
				continue
			}
			fmt.Fprintf(&b, "### %s (%d reports)\n\n", r.FS, len(r.Violations))
			for i, v := range r.Violations {
				if i == perFS {
					fmt.Fprintf(&b, "… %d more.\n\n", len(r.Violations)-perFS)
					break
				}
				fmt.Fprintf(&b, "```\n%s\n```\n\n", v.String())
			}
		}
	}

	b.WriteString("## Reproduce\n\n")
	b.WriteString("```sh\n")
	bugFlag := ""
	if seeded {
		bugFlag = fmt.Sprintf(" -app-bugs=%s", rep.AppBugs)
	}
	for _, r := range rep.Runs {
		fmt.Fprintf(&b, "chipmunk -app=%s%s -fs %s -suite %s -cap %d -v\n",
			rep.App, bugFlag, r.FS, rep.Suite, rep.Cap)
	}
	b.WriteString("```\n\n")
	b.WriteString("The engine is deterministic: the same command reproduces the same crash states and the same reports, byte for byte, at any worker count.\n")
	if rep.Journal != "" {
		fmt.Fprintf(&b, "\nPer-state evidence (one JSONL event per workload, fence, and violation) is in `%s`.\n", rep.Journal)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
