package report

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/fs/nova"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

func TestWriteClustersEndToEnd(t *testing.T) {
	// Produce real violations from the engine.
	cfg := core.Config{NewFS: func(pm *persist.PM) vfs.FS {
		return nova.New(pm, bugs.Of(bugs.NovaRenameInPlaceDelete))
	}}
	w := workload.Workload{Name: "bug4", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Size: 64, Seed: 1},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
	}}
	res, err := core.RunContext(context.Background(), cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Buggy() {
		t.Fatal("no violations to report")
	}
	clusters := core.Triage(res.Violations)

	dir := t.TempDir()
	wr, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := wr.WriteClusters("nova", clusters)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(clusters) {
		t.Fatalf("paths = %d, clusters = %d", len(paths), len(clusters))
	}

	// The report mentions the violation and the repro round-trips.
	rep, err := os.ReadFile(filepath.Join(paths[0], "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"nova", "atomicity", "rename", "reproduce with"} {
		if !strings.Contains(string(rep), want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	reproSrc, err := os.ReadFile(filepath.Join(paths[0], "repro.txt"))
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := workload.Parse(string(reproSrc))
	if err != nil {
		t.Fatalf("repro does not parse: %v\n%s", err, reproSrc)
	}
	// Running the parsed repro reproduces the violation.
	res2, err := core.RunContext(context.Background(), cfg, parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Buggy() {
		t.Fatal("written repro does not reproduce the bug")
	}

	idx, err := os.ReadFile(filepath.Join(dir, "INDEX.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(idx), "cluster-001") {
		t.Fatalf("index = %s", idx)
	}
}
