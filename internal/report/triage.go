package report

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"chipmunk/internal/obs"
)

// This file is the violation triage explorer behind journaltool -triage: it
// clusters a journal's violation events by (violation kind, file system,
// canonical trace prefix) into a deduplicated census. The prefix — the
// workload's op renderings up to the implicated syscall, stamped on each
// violation event by the engine — is a pure function of the workload, so
// the census is deterministic for a given event multiset regardless of the
// order journals were merged in.

// TriageCluster is one deduplicated violation class: every violation event
// sharing (Kind, FS, Prefix).
type TriageCluster struct {
	Kind   string
	FS     string
	Prefix string
	// Count is the number of violation events in the cluster; Workloads the
	// distinct workload names they came from (sorted).
	Count     int
	Workloads []string
	// Detail is the representative cause line (the lexicographically
	// smallest in the cluster — stable, not scheduling-dependent); Phases
	// the distinct crash-phase renderings observed.
	Detail string
	Phases []string
}

// TriageEvents clusters every violation event. Non-violation events are
// ignored, so whole journals pass unfiltered. Clusters come back sorted:
// descending count, then kind, FS, prefix — the census order WriteTriage
// renders and tests diff.
func TriageEvents(events []obs.Event) []TriageCluster {
	type key struct{ kind, fs, prefix string }
	byKey := map[key]*TriageCluster{}
	workloads := map[key]map[string]bool{}
	phases := map[key]map[string]bool{}
	for _, e := range events {
		if e.Type != "violation" {
			continue
		}
		k := key{e.Kind, e.FS, e.Prefix}
		c := byKey[k]
		if c == nil {
			c = &TriageCluster{Kind: e.Kind, FS: e.FS, Prefix: e.Prefix, Detail: e.Detail}
			byKey[k] = c
			workloads[k] = map[string]bool{}
			phases[k] = map[string]bool{}
		}
		c.Count++
		if e.Detail != "" && (c.Detail == "" || e.Detail < c.Detail) {
			c.Detail = e.Detail
		}
		if e.Workload != "" {
			workloads[k][e.Workload] = true
		}
		if e.Phase != "" {
			phases[k][e.Phase] = true
		}
	}
	clusters := make([]TriageCluster, 0, len(byKey))
	for k, c := range byKey {
		c.Workloads = sortedKeys(workloads[k])
		c.Phases = sortedKeys(phases[k])
		clusters = append(clusters, *c)
	}
	sort.Slice(clusters, func(i, j int) bool {
		a, b := clusters[i], clusters[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.FS != b.FS {
			return a.FS < b.FS
		}
		return a.Prefix < b.Prefix
	})
	return clusters
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteTriageCensus renders the clusters as the TRIAGE.txt census. The
// output is deterministic: same event multiset, same bytes.
func WriteTriageCensus(w io.Writer, clusters []TriageCluster) error {
	total := 0
	for _, c := range clusters {
		total += c.Count
	}
	fmt.Fprintf(w, "# Chipmunk violation triage census: %d violations in %d clusters\n",
		total, len(clusters))
	fmt.Fprintf(w, "# Clustered by (violation kind, file system, canonical trace prefix).\n")
	if len(clusters) == 0 {
		fmt.Fprintf(w, "\nno violations journaled.\n")
		return nil
	}
	for i, c := range clusters {
		fmt.Fprintf(w, "\n[%d] %s on %s — %d reports\n", i+1, c.Kind, c.FS, c.Count)
		if c.Prefix != "" {
			fmt.Fprintf(w, "    trace prefix: %s\n", c.Prefix)
		}
		if len(c.Workloads) > 0 {
			fmt.Fprintf(w, "    workloads (%d): %s\n", len(c.Workloads), strings.Join(capList(c.Workloads, 8), ", "))
		}
		if len(c.Phases) > 0 {
			fmt.Fprintf(w, "    crash phases: %s\n", strings.Join(c.Phases, "; "))
		}
		if c.Detail != "" {
			fmt.Fprintf(w, "    detail: %s\n", c.Detail)
		}
	}
	return nil
}

// capList bounds a rendered list at n entries with an explicit remainder
// marker — long lists summarize, never flood.
func capList(list []string, n int) []string {
	if len(list) <= n {
		return list
	}
	return append(append([]string{}, list[:n]...), fmt.Sprintf("... %d more", len(list)-n))
}

// WriteTriage clusters events and persists the census as TRIAGE.txt under
// the writer's root, returning the path.
func (w *Writer) WriteTriage(events []obs.Event) (string, error) {
	var b strings.Builder
	if err := WriteTriageCensus(&b, TriageEvents(events)); err != nil {
		return "", err
	}
	path := filepath.Join(w.root, "TRIAGE.txt")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
