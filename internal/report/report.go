// Package report persists Chipmunk bug reports to disk in the layout the
// paper's tool emits for developers: one directory per triaged cluster
// holding the human-readable report, the reproducer program, and the
// summary index. Reports contain everything needed to reproduce the bug
// (Figure 1: "bug reports with enough detail to reproduce the bug").
package report

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"chipmunk/internal/core"
	"chipmunk/internal/workload"
)

// Writer emits reports under a root directory.
type Writer struct {
	root string
}

// NewWriter creates (if needed) the output directory.
func NewWriter(root string) (*Writer, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	return &Writer{root: root}, nil
}

// WriteClusters persists one directory per cluster plus an index file, and
// returns the paths written.
func (w *Writer) WriteClusters(fsName string, clusters []*core.Cluster) ([]string, error) {
	var paths []string
	var index strings.Builder
	fmt.Fprintf(&index, "# Chipmunk bug reports for %s: %d clusters\n\n", fsName, len(clusters))
	for i, c := range clusters {
		dir := filepath.Join(w.root, fmt.Sprintf("cluster-%03d", i+1))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		rep := renderReport(c)
		if err := os.WriteFile(filepath.Join(dir, "report.txt"), []byte(rep), 0o644); err != nil {
			return nil, err
		}
		repro := workload.Format(c.Representative.Workload)
		if err := os.WriteFile(filepath.Join(dir, "repro.txt"), []byte(repro), 0o644); err != nil {
			return nil, err
		}
		paths = append(paths, dir)
		fmt.Fprintf(&index, "cluster-%03d: %d reports — %s during %q\n",
			i+1, c.Count, c.Representative.Kind, c.Representative.SysName)
	}
	if err := os.WriteFile(filepath.Join(w.root, "INDEX.txt"), []byte(index.String()), 0o644); err != nil {
		return nil, err
	}
	return paths, nil
}

// WriteQuarantine persists the quarantine ledger — crash states whose check
// panicked or hung deterministically inside the sandbox — as QUARANTINE.txt.
// An empty ledger writes nothing and returns "". These states still appear
// as VPanic/VTimeout violations in the census; the ledger adds the replay
// coordinates (fence, rank, subset, state key) and the captured stack.
func (w *Writer) WriteQuarantine(fsName string, entries []core.Quarantine, suppressed int) (string, error) {
	if len(entries) == 0 && suppressed == 0 {
		return "", nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# Chipmunk quarantine ledger for %s: %d states\n", fsName, len(entries))
	fmt.Fprintf(&b, "# Each entry is a crash state whose consistency check failed\n")
	fmt.Fprintf(&b, "# deterministically (panic or deadline) and was isolated so the\n")
	fmt.Fprintf(&b, "# census could complete.\n\n")
	for i, q := range entries {
		fmt.Fprintf(&b, "[%d] %s\n", i+1, q.String())
		if q.Stack != "" {
			fmt.Fprintf(&b, "%s\n", indent(strings.TrimRight(q.Stack, "\n"), "    "))
		}
		b.WriteString("\n")
	}
	if suppressed > 0 {
		fmt.Fprintf(&b, "... and %d more quarantined states suppressed (ledger cap)\n", suppressed)
	}
	path := filepath.Join(w.root, "QUARANTINE.txt")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func renderReport(c *core.Cluster) string {
	v := c.Representative
	var b strings.Builder
	fmt.Fprintf(&b, "Chipmunk bug report (%d duplicate reports triaged into this cluster)\n", c.Count)
	fmt.Fprintf(&b, "%s\n\n", strings.Repeat("=", 68))
	fmt.Fprintf(&b, "file system:   %s\n", v.FS)
	fmt.Fprintf(&b, "violation:     %s\n", v.Kind)
	fmt.Fprintf(&b, "crash point:   %s", v.Phase)
	if v.SysName != "" {
		fmt.Fprintf(&b, " of %s", v.SysName)
	}
	b.WriteString("\n")
	if len(v.Subset) > 0 {
		fmt.Fprintf(&b, "replayed in-flight writes (trace indices): %v\n", v.Subset)
	}
	fmt.Fprintf(&b, "\ndetail:\n%s\n", indent(v.Detail, "  "))
	fmt.Fprintf(&b, "\nworkload:\n%s\n", indent(v.Workload.String(), "  "))
	b.WriteString("\nreproduce with:\n  go run ./cmd/chipmunk -fs " + v.FS + " -bugs all -repro repro.txt\n")
	return b.String()
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}
