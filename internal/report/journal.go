package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"chipmunk/internal/obs"
)

// WriteJournalSummary renders a human-readable digest of a run journal:
// what ran, what it found, and where the time went — the §6.3-style
// breakdown recoverable from the JSONL stream without rerunning anything.
// Corrupt or truncated lines were already skipped by the tolerant reader;
// skipped says how many, and is surfaced as a warning, never an error — a
// journal from a killed run must still summarize.
func WriteJournalSummary(w io.Writer, events []obs.Event, skipped int) error {
	var (
		byType     = map[string]int{}
		violKind   = map[string]int{}
		quarKind   = map[string]int{}
		workloads  []obs.Event
		states     int
		deduped    int
		fences     int
		fenceNanos int64
		runFS      []string
	)
	for _, e := range events {
		byType[e.Type]++
		switch e.Type {
		case "run":
			runFS = append(runFS, e.FS)
		case "workload":
			workloads = append(workloads, e)
		case "fence":
			fences++
			states += e.States
			deduped += e.Deduped
			fenceNanos += e.DurNanos
		case "violation":
			violKind[e.Kind]++
		case "quarantine":
			quarKind[e.Kind]++
		}
	}

	fmt.Fprintf(w, "journal: %d events", len(events))
	if skipped > 0 {
		fmt.Fprintf(w, " (WARNING: %d corrupt/truncated lines skipped)", skipped)
	}
	fmt.Fprintln(w)
	if len(runFS) > 0 {
		fmt.Fprintf(w, "runs: %s\n", strings.Join(runFS, ", "))
	}

	var wlNanos int64
	var wlStates, wlViol int
	for _, e := range workloads {
		wlNanos += e.DurNanos
		wlStates += e.States
		wlViol += e.Violations
	}
	fmt.Fprintf(w, "workloads: %d (%d crash states checked, %d violations, %v total)\n",
		len(workloads), wlStates, wlViol, time.Duration(wlNanos).Round(time.Millisecond))
	fmt.Fprintf(w, "fences: %d (%d states, %d deduped, %v in enumerate+check)\n",
		fences, states, deduped, time.Duration(fenceNanos).Round(time.Millisecond))
	fmt.Fprintf(w, "events by type: %s\n", renderCounts(byType))
	if len(violKind) > 0 {
		fmt.Fprintf(w, "violations by kind: %s\n", renderCounts(violKind))
	}
	if len(quarKind) > 0 {
		fmt.Fprintf(w, "quarantines by kind: %s\n", renderCounts(quarKind))
	}
	if n := byType["retry"]; n > 0 {
		fmt.Fprintf(w, "sandbox retries: %d\n", n)
	}

	// The slowest workloads are where a tuning pass starts; five is enough
	// to point at the outliers without drowning the digest.
	if len(workloads) > 0 {
		sort.SliceStable(workloads, func(i, j int) bool {
			return workloads[i].DurNanos > workloads[j].DurNanos
		})
		top := workloads
		if len(top) > 5 {
			top = top[:5]
		}
		fmt.Fprintln(w, "slowest workloads:")
		for _, e := range top {
			fmt.Fprintf(w, "  %-30s %8v  (%d states, %d violations)\n",
				e.Workload, time.Duration(e.DurNanos).Round(time.Microsecond),
				e.States, e.Violations)
		}
	}
	return nil
}

// SummarizeJournalFile reads the journal at path tolerantly and writes its
// summary to w. Only I/O failures are errors.
func SummarizeJournalFile(w io.Writer, path string) error {
	events, skipped, err := obs.ReadJournalFile(path)
	if err != nil {
		return err
	}
	return WriteJournalSummary(w, events, skipped)
}

// renderCounts formats a name->count map deterministically (descending
// count, then name).
func renderCounts(m map[string]int) string {
	type kv struct {
		k string
		v int
	}
	kvs := make([]kv, 0, len(m))
	for k, v := range m {
		kvs = append(kvs, kv{k, v})
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].v != kvs[j].v {
			return kvs[i].v > kvs[j].v
		}
		return kvs[i].k < kvs[j].k
	})
	parts := make([]string, len(kvs))
	for i, e := range kvs {
		parts[i] = fmt.Sprintf("%s=%d", e.k, e.v)
	}
	return strings.Join(parts, " ")
}
