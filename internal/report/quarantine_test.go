package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chipmunk/internal/core"
)

func TestWriteQuarantineLedger(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Empty ledger: nothing written, no error.
	path, err := w.WriteQuarantine("nova", nil, 0)
	if err != nil || path != "" {
		t.Fatalf("empty ledger: path %q, err %v", path, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "QUARANTINE.txt")); !os.IsNotExist(err) {
		t.Fatal("empty ledger wrote QUARANTINE.txt")
	}

	entries := []core.Quarantine{{
		Workload: "fuzz-gen-3",
		Fence:    2,
		Sys:      1,
		Phase:    core.PhaseMid,
		Rank:     4,
		Subset:   []int{0, 2},
		StateKey: 0xdeadbeef,
		Kind:     core.VPanic,
		Detail:   "check panicked: boom",
		Stack:    "goroutine 7 [running]:\nmain.boom()",
		Attempts: 3,
	}}
	path, err = w.WriteQuarantine("nova", entries, 5)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"nova", "fuzz-gen-3", "check-panic", "fence 2", "rank 4",
		"00000000deadbeef", "check panicked: boom", "goroutine 7",
		"5 more quarantined states suppressed",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("QUARANTINE.txt missing %q:\n%s", want, text)
		}
	}
}
