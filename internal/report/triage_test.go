package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chipmunk/internal/obs"
)

func triageFixture() []obs.Event {
	return []obs.Event{
		// Three reports of one bug class: same kind/fs/prefix, different
		// workloads and crash phases.
		{Type: "violation", FS: "nova", Workload: "seq1-001", Kind: "content-mismatch",
			Prefix: "creat(f1); write(f1, 0, 4096)", Phase: "fence 1", Detail: "zzz later detail"},
		{Type: "violation", FS: "nova", Workload: "seq1-002", Kind: "content-mismatch",
			Prefix: "creat(f1); write(f1, 0, 4096)", Phase: "fence 2", Detail: "aaa smallest detail"},
		{Type: "violation", FS: "nova", Workload: "seq1-001", Kind: "content-mismatch",
			Prefix: "creat(f1); write(f1, 0, 4096)", Phase: "fence 1", Detail: "zzz later detail"},
		// A different prefix: its own cluster even with the same kind.
		{Type: "violation", FS: "nova", Workload: "seq1-003", Kind: "content-mismatch",
			Prefix: "creat(f2)", Phase: "fence 1", Detail: "other bug"},
		// A different kind and fs.
		{Type: "violation", FS: "pmfs", Workload: "seq1-004", Kind: "missing-file",
			Prefix: "creat(f3)", Phase: "post-syscall", Detail: "gone"},
		// Non-violations are ignored.
		{Type: "workload", FS: "nova", Workload: "seq1-001"},
		{Type: "span", Name: "check", Trace: "aaaa", Span: "s1"},
	}
}

// TestTriageEvents: violations cluster by (kind, fs, prefix), the
// representative detail is the lexicographic minimum (stable across
// scheduling), and clusters sort by descending count.
func TestTriageEvents(t *testing.T) {
	clusters := TriageEvents(triageFixture())
	if len(clusters) != 3 {
		t.Fatalf("%d clusters, want 3: %+v", len(clusters), clusters)
	}
	c := clusters[0]
	if c.Count != 3 || c.Kind != "content-mismatch" || c.Prefix != "creat(f1); write(f1, 0, 4096)" {
		t.Fatalf("top cluster: %+v", c)
	}
	if c.Detail != "aaa smallest detail" {
		t.Fatalf("representative detail %q, want the lexicographic minimum", c.Detail)
	}
	if len(c.Workloads) != 2 || c.Workloads[0] != "seq1-001" || len(c.Phases) != 2 {
		t.Fatalf("cluster rollups: %+v", c)
	}
}

// TestTriageCensusDeterministic: the rendered census is byte-identical
// regardless of event order — the property CI's two-merge-orders diff
// relies on.
func TestTriageCensusDeterministic(t *testing.T) {
	events := triageFixture()
	var a strings.Builder
	if err := WriteTriageCensus(&a, TriageEvents(events)); err != nil {
		t.Fatal(err)
	}
	rev := make([]obs.Event, len(events))
	for i, e := range events {
		rev[len(events)-1-i] = e
	}
	var b strings.Builder
	if err := WriteTriageCensus(&b, TriageEvents(rev)); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("census differs by event order:\n--- forward ---\n%s--- reversed ---\n%s", a.String(), b.String())
	}
	for _, want := range []string{
		"5 violations in 3 clusters",
		"[1] content-mismatch on nova — 3 reports",
		"trace prefix: creat(f1); write(f1, 0, 4096)",
		"workloads (2): seq1-001, seq1-002",
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("census missing %q:\n%s", want, a.String())
		}
	}
}

// TestWriteTriageFile: the Writer persists the census as TRIAGE.txt; an
// empty journal still writes a census that says so.
func TestWriteTriageFile(t *testing.T) {
	w, err := NewWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path, err := w.WriteTriage(triageFixture())
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "TRIAGE.txt" {
		t.Fatalf("path %q", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "3 clusters") {
		t.Fatalf("TRIAGE.txt content:\n%s", data)
	}

	empty, err := w.WriteTriage(nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(empty)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "no violations journaled") {
		t.Fatalf("empty census:\n%s", data)
	}
}
