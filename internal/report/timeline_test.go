package report

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"chipmunk/internal/obs"
)

func ms(n int) int64 { return int64(time.Duration(n) * time.Millisecond) }

// spanFixture builds one trace's worth of synthetic spans: a workload root
// with a check child and a fence grandchild, shaped like the engine emits.
func spanFixture(trace string, t0 time.Time) []obs.Event {
	return []obs.Event{
		{Type: "span", Name: "workload", Trace: trace, Span: trace + "-root", Workload: "wl",
			Time: t0, DurNanos: ms(10)},
		{Type: "span", Name: "check", Trace: trace, Span: trace + "-check", Parent: trace + "-root",
			Workload: "wl", Time: t0.Add(2 * time.Millisecond), DurNanos: ms(8)},
		{Type: "span", Name: "fence", Trace: trace, Span: trace + "-f1", Parent: trace + "-check",
			Workload: "wl", Fence: 1, Time: t0.Add(3 * time.Millisecond), DurNanos: ms(2)},
	}
}

// TestWriteTimeline: spans group by trace, rows indent by tree depth, and
// the stage breakdown aggregates by span name; non-span events are ignored.
func TestWriteTimeline(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	events := append(spanFixture("aaaa", t0), spanFixture("bbbb", t0.Add(time.Second))...)
	events = append(events, obs.Event{Type: "workload", Workload: "wl"}) // ignored

	var sb strings.Builder
	n, err := WriteTimeline(&sb, events)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("rendered %d spans, want 6", n)
	}
	out := sb.String()
	for _, want := range []string{
		"6 spans in 2 traces",
		"trace aaaa: 3 spans",
		"trace bbbb: 3 spans",
		"    fence wl f1", // depth 2 => two indent steps
		"stage breakdown",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// aaaa started a second before bbbb: earliest-start trace order.
	if strings.Index(out, "trace aaaa") > strings.Index(out, "trace bbbb") {
		t.Errorf("traces out of start order:\n%s", out)
	}
	// Breakdown sorts by total time: workload (20ms) > check (16ms) > fence (4ms).
	wl, ck, fe := strings.Index(out, "workload "), strings.LastIndex(out, "check "), strings.LastIndex(out, "fence ")
	bd := strings.Index(out, "stage breakdown")
	if !(bd < fe && strings.Index(out[bd:], "workload") < strings.Index(out[bd:], "check")) || wl < 0 || ck < 0 {
		t.Errorf("stage breakdown order wrong:\n%s", out)
	}
}

// TestWriteTimelineRowCap: a trace past the row cap summarizes the excess
// explicitly instead of flooding or silently truncating.
func TestWriteTimelineRowCap(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var events []obs.Event
	for i := 0; i < timelineMaxRows+5; i++ {
		events = append(events, obs.Event{
			Type: "span", Name: "fence", Trace: "cccc", Span: fmt.Sprintf("s%03d", i),
			Workload: "wl", Fence: i, Time: t0.Add(time.Duration(i) * time.Millisecond), DurNanos: ms(1),
		})
	}
	var sb strings.Builder
	if _, err := WriteTimeline(&sb, events); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(5 more spans)") {
		t.Errorf("row cap not surfaced:\n%s", sb.String())
	}
}

// TestWriteTimelineNoSpans: a journal without spans (e.g. canonicalized)
// renders a pointer to the raw journals, not an empty page or an error.
func TestWriteTimelineNoSpans(t *testing.T) {
	var sb strings.Builder
	n, err := WriteTimeline(&sb, []obs.Event{{Type: "workload"}})
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !strings.Contains(sb.String(), "no span events") {
		t.Errorf("missing no-spans notice: %s", sb.String())
	}
}
