package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	in := []Event{
		{Type: "run", FS: "nova", Sys: -1},
		{Type: "fence", FS: "nova", Workload: "w1", Fence: 2, Sys: 1, Phase: "mid", InFlight: 3, States: 7, Deduped: 1, DurNanos: 42},
		{Type: "violation", FS: "nova", Workload: "w1", Fence: 2, Sys: 1, Kind: "atomicity", Detail: "matches neither"},
	}
	for _, e := range in {
		j.Emit(e)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if j.Events() != int64(len(in)) {
		t.Fatalf("Events() = %d, want %d", j.Events(), len(in))
	}

	out, skipped, err := ReadJournal(&buf)
	if err != nil || skipped != 0 {
		t.Fatalf("read: err=%v skipped=%d", err, skipped)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Time.IsZero() {
			t.Fatalf("event %d missing emit timestamp", i)
		}
		if got, want := out[i].CanonicalKey(), in[i].CanonicalKey(); got != want {
			t.Fatalf("event %d canonical key mismatch:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestJournalTolerantReader: corrupt, truncated, and blank lines are
// skipped and counted — never fatal. A journal from a killed run must
// still parse.
func TestJournalTolerantReader(t *testing.T) {
	raw := strings.Join([]string{
		`{"t":"2026-08-05T10:00:00Z","type":"run","fs":"nova","sys":-1,"rank":0}`,
		``,
		`{"type":"fence","fs":"nova","sys":0,`, /* truncated mid-object */
		`this is not json at all`,
		`{"t":"2026-08-05T10:00:01Z","sys":0,"rank":0}`, /* valid JSON, no type */
		`{"t":"2026-08-05T10:00:02Z","type":"workload","workload":"w","sys":-1,"rank":0}`,
	}, "\n")
	events, skipped, err := ReadJournal(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if skipped != 3 {
		t.Fatalf("skipped = %d, want 3", skipped)
	}
	if events[0].Type != "run" || events[1].Type != "workload" {
		t.Fatalf("wrong events survived: %+v", events)
	}
}

func TestCanonicalKeyClearsWallClock(t *testing.T) {
	a := Event{Time: time.Now(), Type: "fence", Fence: 1, Sys: 0, DurNanos: 111}
	b := Event{Time: time.Now().Add(time.Hour), Type: "fence", Fence: 1, Sys: 0, DurNanos: 999}
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatal("canonical keys differ on wall-clock-only fields")
	}
	c := Event{Type: "fence", Fence: 2, Sys: 0}
	if a.CanonicalKey() == c.CanonicalKey() {
		t.Fatal("canonical keys collide across different fences")
	}
}

func TestJournalCreateFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(Event{Type: "run", FS: "pmfs", Sys: -1})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent (CLIs close once explicitly and once deferred).
	if err := j.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	events, skipped, err := ReadJournalFile(path)
	if err != nil || skipped != 0 || len(events) != 1 {
		t.Fatalf("read back: events=%d skipped=%d err=%v", len(events), skipped, err)
	}
	data, _ := os.ReadFile(path)
	if !bytes.HasSuffix(data, []byte("\n")) {
		t.Fatal("journal not newline-terminated")
	}
}
