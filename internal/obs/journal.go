package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Event is one run-journal record: an append-only, self-describing JSONL
// line. The journal records WHAT the pipeline did — one event per workload,
// fence, violation, quarantine, and retry — with timestamps and state
// digests, so a run can be post-mortemed or diffed without rerunning it.
//
// Determinism contract: with Time and DurNanos cleared (CanonicalKey), the
// multiset of events a suite produces is a pure function of the suite and
// configuration — identical between serial and parallel runs. Wall-clock
// fields are measurements, not identity.
type Event struct {
	// Time is when the event was emitted (filled by Emit when zero).
	Time time.Time `json:"t"`
	// Type is the event class: "run", "workload", "fence", "violation",
	// "quarantine", "retry", "span" (see Tracer), or the campaign-side
	// diagnostics "shard-quarantine", "heartbeat-refused", and
	// "shard-watchdog".
	Type string `json:"type"`
	// FS names the system under test; Workload the workload involved.
	FS       string `json:"fs,omitempty"`
	Workload string `json:"workload,omitempty"`
	// Fence is the 1-based fence ordinal (0 = post-syscall, no fence);
	// Sys the implicated syscall index (-1 = none); Rank the state's
	// canonical subset rank; Phase the crash phase rendering.
	Fence int    `json:"fence,omitempty"`
	Sys   int    `json:"sys"`
	Rank  int    `json:"rank"`
	Phase string `json:"phase,omitempty"`
	// InFlight is the fence's in-flight write count; States the distinct
	// crash states checked there; Deduped how many subsets were skipped
	// as byte-identical.
	InFlight int `json:"inflight,omitempty"`
	States   int `json:"states,omitempty"`
	Deduped  int `json:"deduped,omitempty"`
	// Fences/Violations summarize a whole workload (type "workload").
	Fences     int `json:"fences,omitempty"`
	Violations int `json:"violations,omitempty"`
	// Kind classifies violation/quarantine events (ViolationKind string).
	Kind string `json:"kind,omitempty"`
	// StateKey is the hex FNV-64a digest of the implicated crash state's
	// byte-diff identity (quarantine events).
	StateKey string `json:"state_key,omitempty"`
	// Detail is a one-line human-readable cause.
	Detail string `json:"detail,omitempty"`
	// Name, Trace, Span, and Parent describe "span" events (see Tracer):
	// the span's class, its trace, its own deterministic ID, and its
	// enclosing span ("" for a trace root).
	Name   string `json:"name,omitempty"`
	Trace  string `json:"trace,omitempty"`
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
	// Worker attributes campaign-side events (heartbeat-refused,
	// shard-watchdog, shard-lease spans) to a worker ID.
	Worker string `json:"worker,omitempty"`
	// Prefix is the canonical trace prefix of a violation event: the
	// workload's op renderings up to and including the implicated syscall.
	// A pure function of the workload, it is the clustering key
	// journaltool -triage groups violations by (with Kind and FS).
	Prefix string `json:"prefix,omitempty"`
	// DurNanos is the event's measured duration, where one applies
	// (workload and fence events).
	DurNanos int64 `json:"dur_ns,omitempty"`
}

// CanonicalKey renders the event with its wall-clock fields (Time,
// DurNanos) cleared — the identity the journal determinism contract is
// stated over. Two runs of the same suite produce equal multisets of
// canonical keys regardless of worker count.
func (e Event) CanonicalKey() string {
	e.Time = time.Time{}
	e.DurNanos = 0
	b, err := json.Marshal(e)
	if err != nil {
		// Event is a plain struct of marshalable fields; this cannot
		// happen, but never let the determinism check panic.
		return fmt.Sprintf("unmarshalable: %v", err)
	}
	return string(b)
}

// Journal is an append-only JSONL event stream. Emit is safe for
// concurrent use from worker goroutines; a nil *Journal discards events
// without allocating, so call sites need no guards.
type Journal struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	closer io.Closer
	err    error // first write error, surfaced by Close
	events int64
}

// Create opens (truncating) a journal file at path.
func Create(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: journal: %w", err)
	}
	j := NewJournal(f)
	j.closer = f
	return j, nil
}

// NewJournal wraps an arbitrary writer (tests, in-memory buffers).
func NewJournal(w io.Writer) *Journal {
	return &Journal{bw: bufio.NewWriter(w)}
}

// Emit appends one event, stamping Time if the caller left it zero.
// Write errors are sticky and reported by Close — observability must never
// fail the pipeline mid-run.
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if _, err := j.bw.Write(line); err != nil {
		j.err = err
		return
	}
	if err := j.bw.WriteByte('\n'); err != nil {
		j.err = err
		return
	}
	j.events++
}

// Events reports how many events were appended.
func (j *Journal) Events() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.events
}

// Flush forces buffered events to the underlying writer.
func (j *Journal) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err == nil {
		j.err = j.bw.Flush()
	}
	return j.err
}

// Close flushes and closes the journal, returning the first error any
// write hit.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	err := j.Flush()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closer != nil {
		if cerr := j.closer.Close(); err == nil {
			err = cerr
		}
		j.closer = nil
	}
	return err
}

// maxJournalLine bounds one journal line during reads; violation details
// are first-line-truncated at emit time, so 1 MiB is generous.
const maxJournalLine = 1 << 20

// ReadJournal parses a JSONL journal tolerantly: blank lines are ignored
// and truncated or corrupt lines are skipped and counted, never fatal — a
// journal from a crashed or killed run must still summarize. The error
// return reports I/O failures only.
func ReadJournal(r io.Reader) (events []Event, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxJournalLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if json.Unmarshal(line, &e) != nil || e.Type == "" {
			skipped++
			continue
		}
		events = append(events, e)
	}
	return events, skipped, sc.Err()
}

// ReadJournalFile reads the journal at path with ReadJournal's tolerance.
func ReadJournalFile(path string) (events []Event, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("obs: journal: %w", err)
	}
	defer f.Close()
	return ReadJournal(f)
}
