// Package obs is Chipmunk's observability layer: per-stage metrics, an
// append-only run journal, and a live-introspection HTTP server. The paper's
// §6.3 evaluation rests on knowing where testing time goes — crash-state
// *checking* dominates wall-clock, which justifies the replay cap and the
// dedup design — and Vinter and Yat both publish per-phase trace/replay
// statistics. This package makes those numbers first-class instead of
// ad-hoc benchmark metrics.
//
// Everything here is compiled in but off by default, and nil-safe by
// construction: a nil *Collector (and a nil *Journal) is a no-op sink with
// zero allocations on the hot path, so the engine threads calls through
// unconditionally and pays only a nil check when observability is disabled.
// The package depends on the standard library alone.
//
// Concurrency model: the Collector is a bag of atomics — stage duration
// histograms and monotonic counters — safe to record into from any worker
// goroutine without locks. Each engine run records into its own Collector
// and publishes an immutable Snapshot on its Result; the harness merges
// those snapshots on the coordinator, so serial and parallel runs of the
// same suite produce identical counter totals (durations are wall-clock
// facts and naturally vary with scheduling).
package obs

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// Stage identifies one timed phase of the crash-consistency pipeline. The
// stages are disjoint — no stage's interval contains another's — so their
// total durations can be summed and compared against wall-clock.
type Stage uint8

const (
	// StageOracle is the oracle pass: running the workload on the
	// reference model and capturing the observable state per call.
	StageOracle Stage = iota
	// StageRecord is the record pass: running the workload on the target
	// with the persistence-function trace attached.
	StageRecord
	// StageDedup is subset enumeration plus byte-diff state dedup at a
	// fence (coordinator-side, before any checking).
	StageDedup
	// StageReplay is materializing one crash image: base bytes plus the
	// replayed in-flight subset (and injected faults, when enabled).
	StageReplay
	// StageMount is mounting the target file system on a crash image.
	StageMount
	// StageCheck is the post-mount consistency checking of one crash
	// state: state capture, oracle comparison, usability probe. Mounting
	// is deliberately excluded (it is StageMount).
	StageCheck
	numStages
)

var stageNames = [numStages]string{
	StageOracle: "oracle",
	StageRecord: "record",
	StageDedup:  "dedup",
	StageReplay: "replay",
	StageMount:  "mount",
	StageCheck:  "check",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// Counter identifies one monotonic event counter. Most counters are pure
// functions of the checked suite — never of scheduling — so a serial and a
// parallel run of the same suite report identical values; Deterministic
// distinguishes those from the measurement-class counters (fault and
// materialization accounting), which are recorded per attempt and may vary
// with retries, worker counts, and pool scheduling.
type Counter uint8

const (
	// CtrWorkloads counts completed engine runs.
	CtrWorkloads Counter = iota
	// CtrFences counts store fences encountered during replay walks.
	CtrFences
	// CtrStatesChecked counts crash states whose check reached a
	// classified outcome.
	CtrStatesChecked
	// CtrDedupHits counts crash states skipped because their image was
	// byte-identical to one already checked at the same crash point.
	CtrDedupHits
	// CtrTruncatedFences counts fences whose exhaustive enumeration fell
	// back to the safety cap.
	CtrTruncatedFences
	// CtrSandboxRetries counts checks that succeeded only after a sandbox
	// retry (transient failures).
	CtrSandboxRetries
	// CtrQuarantines counts crash states quarantined after deterministic
	// sandbox failures (including ledger-cap overflow).
	CtrQuarantines
	// CtrFaultsInjected counts injected pmem faults that actually landed:
	// torn writes, flipped bits, and raised media errors. Unlike the other
	// counters it is recorded per attempt, so sandbox retries (rare,
	// transient) can recount a state's faults.
	CtrFaultsInjected
	// CtrViolations counts reported violations (including suppressed
	// overflow).
	CtrViolations
	// CtrImagePrimes counts full-device primes of pooled crash-state images
	// (delta materialization). Measurement-class like CtrFaultsInjected:
	// recorded per attempt and dependent on pool scheduling — a parallel run
	// primes roughly one image per worker where a serial run primes one.
	CtrImagePrimes
	// CtrImagesRetired counts pooled images retired instead of rolled back:
	// their check was abandoned (timeout, cancellation) or poisoned the
	// image (guest panic, media error), so the buffer can no longer be
	// trusted to equal base-plus-delta. Measurement-class.
	CtrImagesRetired
	// CtrBytesMaterialized counts bytes copied applying crash-state deltas
	// (replayed subset writes) onto primed images. Per-state this scales
	// with the subset's span size, never with the device size — the O(diff)
	// claim BenchmarkMaterializeState asserts. Measurement-class.
	CtrBytesMaterialized
	// CtrBytesPrimed counts bytes copied (re)priming pooled images with a
	// fence's base image, full primes and incremental advances alike.
	// Measurement-class.
	CtrBytesPrimed
	// CtrBytesRolledBack counts bytes restored returning a pooled image to
	// its base: guest-mutation undo plus delta-span reverts.
	// Measurement-class.
	CtrBytesRolledBack
	// CtrShardsQuarantined counts campaign shards the coordinator moved to
	// the shard-quarantine ledger after exhausting their dispatch attempts.
	// Measurement-class: infrastructure failures, not a function of the
	// suite — a degraded census must stay fingerprint-comparable to a clean
	// serial run over the same shards.
	CtrShardsQuarantined
	// CtrSpansCoalesced counts raw write spans merged away when the engine
	// coalesces a crash-state subset's adjacent/overlapping byte intervals
	// into maximal runs before keying and materialization. Coordinator-only
	// (recorded during dedup enumeration), so deterministic: a pure function
	// of the checked suite, identical across worker counts.
	CtrSpansCoalesced
	// CtrOracleSnapshotHits counts crash-state checks served by a shared
	// per-crash-point oracle snapshot instead of re-deriving the
	// oracle-visible view per check. Measurement-class like
	// CtrFaultsInjected: recorded per check attempt, so sandbox retries
	// (rare, transient) recount a state's hit.
	CtrOracleSnapshotHits
	// CtrFuzzExecs counts fuzzing iterations (engine runs driven by the
	// coverage-guided mutator) credited by a fleet-fuzzing coordinator.
	// Measurement-class: a duration-budgeted soak credits however many
	// rounds wall-clock allowed, so the value is progress, not contract.
	CtrFuzzExecs
	// CtrCorpusEntries counts workloads admitted to the global fuzzing
	// corpus (each carried a syscall-coverage signature not yet seen).
	CtrCorpusEntries
	// CtrCoverageEdges counts distinct syscall-coverage signatures in the
	// global corpus — the union of admitted entries' signature sets.
	CtrCoverageEdges
	// CtrDistinctBugs counts deduplicated violation clusters in the fleet
	// bug census: distinct (kind, FS, trace prefix) triples.
	CtrDistinctBugs
	numCounters
)

var counterNames = [numCounters]string{
	CtrWorkloads:       "workloads",
	CtrFences:          "fences",
	CtrStatesChecked:   "states-checked",
	CtrDedupHits:       "dedup-hit",
	CtrTruncatedFences: "truncated-fences",
	CtrSandboxRetries:  "sandbox-retry",
	CtrQuarantines:     "quarantine",
	CtrFaultsInjected:  "fault-injected",
	CtrViolations:      "violations",

	CtrImagePrimes:       "image-primes",
	CtrImagesRetired:     "images-retired",
	CtrBytesMaterialized: "bytes-materialized",
	CtrBytesPrimed:       "bytes-primed",
	CtrBytesRolledBack:   "bytes-rolled-back",

	CtrShardsQuarantined:  "shards-quarantined",
	CtrSpansCoalesced:     "spans-coalesced",
	CtrOracleSnapshotHits: "oracle-snapshot-hits",

	CtrFuzzExecs:     "fuzz-execs",
	CtrCorpusEntries: "corpus-entries",
	CtrCoverageEdges: "coverage-edges",
	CtrDistinctBugs:  "distinct-bugs",
}

func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return fmt.Sprintf("Counter(%d)", uint8(c))
}

// Deterministic reports whether the counter is covered by the engine's
// serial == parallel == retry determinism contract (its value is a pure
// function of the checked suite). The measurement-class counters — fault
// injection and crash-image materialization accounting — are recorded per
// attempt on the hot path, so retries recount them and pool scheduling
// shifts prime/rollback work between full primes and incremental advances.
func (c Counter) Deterministic() bool {
	switch c {
	case CtrFaultsInjected, CtrImagePrimes, CtrImagesRetired,
		CtrBytesMaterialized, CtrBytesPrimed, CtrBytesRolledBack,
		CtrShardsQuarantined, CtrOracleSnapshotHits,
		CtrFuzzExecs, CtrCorpusEntries, CtrCoverageEdges, CtrDistinctBugs:
		return false
	}
	return true
}

// histBuckets is the number of log2 duration buckets: bucket i holds
// observations with 2^(i-1) ns <= d < 2^i ns, which spans sub-nanosecond
// to ~18 minutes — wider than any sane per-stage interval.
const histBuckets = 41

// stageRec is the live accumulator for one stage: all atomics, no locks.
type stageRec struct {
	count   atomic.Int64
	nanos   atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// pmRec accumulates the simulated-PM cost-model counters fed from
// pmem.Stats (see pmem.Stats.Feed).
type pmRec struct {
	storeBytes, ntBytes, flushes, linesFlushed, fences, simNanos atomic.Int64
}

// Collector accumulates stage timings and counters for one scope — one
// engine run, or one whole campaign when used as a live merge target. A nil
// *Collector is a valid no-op sink: every method returns immediately
// without allocating.
type Collector struct {
	stages   [numStages]stageRec
	counters [numCounters]atomic.Int64
	pm       pmRec
}

// New returns an empty, enabled collector.
func New() *Collector { return &Collector{} }

// Enabled reports whether records land anywhere.
func (c *Collector) Enabled() bool { return c != nil }

// Start returns the current time when the collector is enabled, and the
// zero time otherwise — pair with ObserveSince so a disabled collector
// never reads the clock.
func (c *Collector) Start() time.Time {
	if c == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records one observation of stage s lasting since start (a
// value obtained from Start). No-op on a nil collector.
func (c *Collector) ObserveSince(s Stage, start time.Time) {
	if c == nil {
		return
	}
	c.Observe(s, time.Since(start))
}

// Observe records one observation of stage s with duration d.
func (c *Collector) Observe(s Stage, d time.Duration) {
	if c == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	rec := &c.stages[s]
	rec.count.Add(1)
	rec.nanos.Add(ns)
	for {
		old := rec.max.Load()
		if ns <= old || rec.max.CompareAndSwap(old, ns) {
			break
		}
	}
	rec.buckets[bucketOf(ns)].Add(1)
}

// bucketOf maps a nanosecond duration to its log2 bucket.
func bucketOf(ns int64) int {
	b := bits.Len64(uint64(ns))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Add increments counter ct by n. No-op on a nil collector.
func (c *Collector) Add(ct Counter, n int64) {
	if c == nil {
		return
	}
	c.counters[ct].Add(n)
}

// Inc increments counter ct by one.
func (c *Collector) Inc(ct Counter) { c.Add(ct, 1) }

// RecordPM accumulates simulated-PM device counters into the collector;
// pmem.Stats.Feed is the canonical caller.
func (c *Collector) RecordPM(storeBytes, ntBytes, flushes, linesFlushed, fences, simNanos int64) {
	if c == nil {
		return
	}
	c.pm.storeBytes.Add(storeBytes)
	c.pm.ntBytes.Add(ntBytes)
	c.pm.flushes.Add(flushes)
	c.pm.linesFlushed.Add(linesFlushed)
	c.pm.fences.Add(fences)
	c.pm.simNanos.Add(simNanos)
}

// StageStat is the frozen view of one stage's accumulator.
type StageStat struct {
	// Count is the number of observations; Nanos their total duration.
	Count int64 `json:"count"`
	Nanos int64 `json:"nanos"`
	// MaxNanos is the longest single observation.
	MaxNanos int64 `json:"max_nanos"`
	// Buckets is the log2 duration histogram: Buckets[i] counts
	// observations with 2^(i-1) ns <= d < 2^i ns.
	Buckets [histBuckets]int64 `json:"buckets"`
}

// Total returns the stage's accumulated duration.
func (st StageStat) Total() time.Duration { return time.Duration(st.Nanos) }

// Avg returns the mean observation duration (0 when empty).
func (st StageStat) Avg() time.Duration {
	if st.Count == 0 {
		return 0
	}
	return time.Duration(st.Nanos / st.Count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) from the
// log2 histogram: the upper edge of the bucket the quantile falls in.
func (st StageStat) Quantile(q float64) time.Duration {
	if st.Count == 0 {
		return 0
	}
	// Round the target rank UP: the q-quantile must cover at least
	// ceil(q*count) observations, or p99 of two samples would return the
	// smaller one.
	target := int64(q * float64(st.Count))
	if float64(target) < q*float64(st.Count) {
		target++
	}
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, n := range st.Buckets {
		seen += n
		if seen >= target {
			return time.Duration(int64(1) << i)
		}
	}
	return time.Duration(st.MaxNanos)
}

// merge folds other into st.
func (st *StageStat) merge(other StageStat) {
	st.Count += other.Count
	st.Nanos += other.Nanos
	if other.MaxNanos > st.MaxNanos {
		st.MaxNanos = other.MaxNanos
	}
	for i := range st.Buckets {
		st.Buckets[i] += other.Buckets[i]
	}
}

// PMStats is the frozen view of the simulated-PM cost-model counters.
type PMStats struct {
	StoreBytes   int64 `json:"store_bytes"`
	NTBytes      int64 `json:"nt_bytes"`
	Flushes      int64 `json:"flushes"`
	LinesFlushed int64 `json:"lines_flushed"`
	Fences       int64 `json:"fences"`
	SimNanos     int64 `json:"sim_nanos"`
}

// Snapshot is an immutable copy of a collector's state, embeddable in
// results and censuses and renderable by the CLIs. Maps are keyed by the
// Stage/Counter names so the JSON form (served by /debug/vars) is
// self-describing.
type Snapshot struct {
	Stages   map[string]StageStat `json:"stages"`
	Counters map[string]int64     `json:"counters"`
	PM       PMStats              `json:"pm"`
}

// Snapshot freezes the collector's current state. Safe to call while
// workers are still recording (values are read atomically; the snapshot is
// then a consistent-enough live view, exact once recording has stopped).
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Stages:   make(map[string]StageStat, numStages),
		Counters: make(map[string]int64, numCounters),
	}
	if c == nil {
		return s
	}
	for i := Stage(0); i < numStages; i++ {
		rec := &c.stages[i]
		st := StageStat{
			Count:    rec.count.Load(),
			Nanos:    rec.nanos.Load(),
			MaxNanos: rec.max.Load(),
		}
		for b := range st.Buckets {
			st.Buckets[b] = rec.buckets[b].Load()
		}
		if st.Count > 0 {
			s.Stages[i.String()] = st
		}
	}
	for i := Counter(0); i < numCounters; i++ {
		if v := c.counters[i].Load(); v != 0 {
			s.Counters[i.String()] = v
		}
	}
	s.PM = PMStats{
		StoreBytes:   c.pm.storeBytes.Load(),
		NTBytes:      c.pm.ntBytes.Load(),
		Flushes:      c.pm.flushes.Load(),
		LinesFlushed: c.pm.linesFlushed.Load(),
		Fences:       c.pm.fences.Load(),
		SimNanos:     c.pm.simNanos.Load(),
	}
	return s
}

// Merge folds a snapshot back into a live collector — how per-workload
// engine snapshots reach the campaign-wide collector the debug server
// reads. No-op on a nil collector.
func (c *Collector) Merge(s Snapshot) {
	if c == nil {
		return
	}
	for name, st := range s.Stages {
		for i := Stage(0); i < numStages; i++ {
			if i.String() != name {
				continue
			}
			rec := &c.stages[i]
			rec.count.Add(st.Count)
			rec.nanos.Add(st.Nanos)
			for {
				old := rec.max.Load()
				if st.MaxNanos <= old || rec.max.CompareAndSwap(old, st.MaxNanos) {
					break
				}
			}
			for b, n := range st.Buckets {
				rec.buckets[b].Add(n)
			}
		}
	}
	for name, v := range s.Counters {
		for i := Counter(0); i < numCounters; i++ {
			if i.String() == name {
				c.counters[i].Add(v)
			}
		}
	}
	c.RecordPM(s.PM.StoreBytes, s.PM.NTBytes, s.PM.Flushes, s.PM.LinesFlushed, s.PM.Fences, s.PM.SimNanos)
}

// Merge folds other into s (map-level aggregation, used by the harness
// census and the fuzzer's campaign totals).
func (s *Snapshot) Merge(other Snapshot) {
	if s.Stages == nil {
		s.Stages = make(map[string]StageStat, numStages)
	}
	if s.Counters == nil {
		s.Counters = make(map[string]int64, numCounters)
	}
	for name, st := range other.Stages {
		cur := s.Stages[name]
		cur.merge(st)
		s.Stages[name] = cur
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	s.PM.StoreBytes += other.PM.StoreBytes
	s.PM.NTBytes += other.PM.NTBytes
	s.PM.Flushes += other.PM.Flushes
	s.PM.LinesFlushed += other.PM.LinesFlushed
	s.PM.Fences += other.PM.Fences
	s.PM.SimNanos += other.PM.SimNanos
}

// DeterministicCounters returns the subset of the snapshot's counters that
// the serial == parallel determinism contract covers — what differential
// tests compare across worker counts. Measurement-class counters
// (fault-injected, the materialization family) are excluded.
func (s *Snapshot) DeterministicCounters() map[string]int64 {
	out := make(map[string]int64)
	if s == nil {
		return out
	}
	for i := Counter(0); i < numCounters; i++ {
		if !i.Deterministic() {
			continue
		}
		if v, ok := s.Counters[i.String()]; ok {
			out[i.String()] = v
		}
	}
	return out
}

// Count returns a counter by enum (0 when absent or s is nil).
func (s *Snapshot) Count(ct Counter) int64 {
	if s == nil {
		return 0
	}
	return s.Counters[ct.String()]
}

// Stage returns a stage's stats by enum (zero value when absent or nil).
func (s *Snapshot) Stage(st Stage) StageStat {
	if s == nil {
		return StageStat{}
	}
	return s.Stages[st.String()]
}

// StageTotal sums every stage's accumulated duration — the number the
// acceptance contract compares against wall-clock for serial runs (stages
// are disjoint intervals).
func (s *Snapshot) StageTotal() time.Duration {
	if s == nil {
		return 0
	}
	var total int64
	for _, st := range s.Stages {
		total += st.Nanos
	}
	return time.Duration(total)
}

// Render formats the per-stage time/count breakdown the -stats flag
// prints. wall is the run's wall-clock duration (0 to omit percentages).
func (s *Snapshot) Render(wall time.Duration) string {
	if s == nil {
		return "obs: no metrics collected\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %14s %12s %12s %8s\n",
		"stage", "count", "total", "avg", "p99", "% wall")
	fmt.Fprintln(&b, strings.Repeat("-", 72))
	for i := Stage(0); i < numStages; i++ {
		st, ok := s.Stages[i.String()]
		if !ok {
			continue
		}
		pct := "-"
		if wall > 0 {
			pct = fmt.Sprintf("%.1f%%", 100*float64(st.Nanos)/float64(wall))
		}
		fmt.Fprintf(&b, "%-8s %12d %14v %12v %12v %8s\n",
			i, st.Count, st.Total().Round(time.Microsecond),
			st.Avg().Round(time.Nanosecond), st.Quantile(0.99), pct)
	}
	total := s.StageTotal()
	if wall > 0 {
		fmt.Fprintf(&b, "%-8s %12s %14v %12s %12s %7.1f%%\n",
			"sum", "", total.Round(time.Microsecond), "", "",
			100*float64(total)/float64(wall))
		fmt.Fprintf(&b, "wall-clock: %v\n", wall.Round(time.Microsecond))
		if sc := s.Count(CtrStatesChecked); sc > 0 {
			fmt.Fprintf(&b, "throughput: %.1f states/sec\n", float64(sc)/wall.Seconds())
		}
	} else {
		fmt.Fprintf(&b, "%-8s %12s %14v\n", "sum", "", total.Round(time.Microsecond))
	}
	var ctrs []string
	for i := Counter(0); i < numCounters; i++ {
		if v, ok := s.Counters[i.String()]; ok {
			ctrs = append(ctrs, fmt.Sprintf("%s=%d", i, v))
		}
	}
	if len(ctrs) > 0 {
		fmt.Fprintf(&b, "counters: %s\n", strings.Join(ctrs, " "))
	}
	if s.PM != (PMStats{}) {
		fmt.Fprintf(&b, "pm: stores=%dB nt=%dB flushes=%d lines=%d fences=%d sim=%dns\n",
			s.PM.StoreBytes, s.PM.NTBytes, s.PM.Flushes, s.PM.LinesFlushed,
			s.PM.Fences, s.PM.SimNanos)
	}
	return b.String()
}
