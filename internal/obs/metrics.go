package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4) — the /debug/metrics endpoint shared by the -debug-addr
// listener and the campaign coordinator. No client library: the format is
// line-oriented text, and emitting it by hand keeps the package
// stdlib-only.
//
// Mapping:
//   - every Counter becomes a `chipmunk_<name>_total` counter (emitted in
//     enum order, zeros included, so the series set is stable);
//   - every Stage becomes one `{stage=...}` series family of the
//     `chipmunk_stage_duration_seconds` histogram: the log2 buckets render
//     as cumulative `_bucket{le=...}` lines (le = 2^i ns in seconds, the
//     bucket's upper edge) up to the highest occupied bucket, plus the
//     mandatory `+Inf`, `_sum`, and `_count`;
//   - the simulated-PM cost-model counters become `chipmunk_pm_*_total`.
//
// Output is a deterministic function of the snapshot: fixed iteration
// order, no timestamps.

// MetricsContentType is the Content-Type for WriteMetrics output.
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteMetrics renders the snapshot in Prometheus text exposition format.
// Nil-safe: a nil snapshot renders the same stable series set with zero
// values.
func (s *Snapshot) WriteMetrics(w io.Writer) {
	for i := Counter(0); i < numCounters; i++ {
		name := "chipmunk_" + metricName(i.String()) + "_total"
		fmt.Fprintf(w, "# HELP %s Chipmunk %q counter.\n", name, i.String())
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		fmt.Fprintf(w, "%s %d\n", name, s.Count(i))
	}

	const hist = "chipmunk_stage_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Per-stage duration histogram (log2 buckets).\n", hist)
	fmt.Fprintf(w, "# TYPE %s histogram\n", hist)
	for i := Stage(0); i < numStages; i++ {
		st := s.Stage(i)
		hi := -1
		for b, n := range st.Buckets {
			if n > 0 {
				hi = b
			}
		}
		var cum int64
		for b := 0; b <= hi; b++ {
			cum += st.Buckets[b]
			le := float64(uint64(1)<<uint(b)) / 1e9
			fmt.Fprintf(w, "%s_bucket{stage=%q,le=%q} %d\n", hist, i.String(), formatLE(le), cum)
		}
		fmt.Fprintf(w, "%s_bucket{stage=%q,le=\"+Inf\"} %d\n", hist, i.String(), st.Count)
		fmt.Fprintf(w, "%s_sum{stage=%q} %s\n", hist, i.String(), formatLE(float64(st.Nanos)/1e9))
		fmt.Fprintf(w, "%s_count{stage=%q} %d\n", hist, i.String(), st.Count)
	}

	pm := []struct {
		name string
		v    int64
	}{
		{"pm_store_bytes", s.pmStats().StoreBytes},
		{"pm_nt_bytes", s.pmStats().NTBytes},
		{"pm_flushes", s.pmStats().Flushes},
		{"pm_lines_flushed", s.pmStats().LinesFlushed},
		{"pm_fences", s.pmStats().Fences},
		{"pm_sim_nanos", s.pmStats().SimNanos},
	}
	for _, m := range pm {
		name := "chipmunk_" + m.name + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, m.v)
	}
}

// pmStats returns the PM stats nil-safely.
func (s *Snapshot) pmStats() PMStats {
	if s == nil {
		return PMStats{}
	}
	return s.PM
}

// metricName sanitizes a counter name into the Prometheus identifier
// alphabet ([a-zA-Z0-9_]): the obs counter names only use '-' outside it.
func metricName(name string) string {
	return strings.ReplaceAll(name, "-", "_")
}

// formatLE renders a bucket edge (seconds) the shortest exact way.
func formatLE(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
