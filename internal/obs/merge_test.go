package obs

import (
	"bytes"
	"testing"
	"time"
)

func TestCanonicalEventsOrderNormalizes(t *testing.T) {
	now := time.Now()
	a := []Event{
		{Time: now, Type: "workload", Workload: "w2", Sys: -1, DurNanos: 99},
		{Time: now, Type: "violation", Workload: "w1", Sys: 0, Kind: "data-loss"},
	}
	b := []Event{
		{Time: now.Add(time.Hour), Type: "workload", Workload: "w1", Sys: -1, DurNanos: 7},
	}

	// Merge order and wall-clock fields must not matter.
	m1 := CanonicalEvents(a, b)
	m2 := CanonicalEvents(b, a)
	if len(m1) != 3 || len(m2) != 3 {
		t.Fatalf("merged lengths = %d, %d, want 3", len(m1), len(m2))
	}
	var buf1, buf2 bytes.Buffer
	if err := WriteEvents(&buf1, m1); err != nil {
		t.Fatal(err)
	}
	if err := WriteEvents(&buf2, m2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("merge not order-independent:\n%s\nvs\n%s", buf1.String(), buf2.String())
	}
	for _, e := range m1 {
		if !e.Time.IsZero() || e.DurNanos != 0 {
			t.Fatalf("wall-clock fields survived canonicalization: %+v", e)
		}
	}

	// Inputs must not be mutated (the caller may still summarize them).
	if a[0].DurNanos != 99 || a[0].Time.IsZero() {
		t.Fatalf("CanonicalEvents mutated its input: %+v", a[0])
	}

	// The canonical stream must round-trip through the tolerant reader
	// with nothing skipped — journaltool -strict runs on merged output.
	events, skipped, err := ReadJournal(&buf1)
	if err != nil || skipped != 0 {
		t.Fatalf("merged stream not clean JSONL: skipped=%d err=%v", skipped, err)
	}
	if len(events) != 3 {
		t.Fatalf("round-trip lost events: %d", len(events))
	}
}
