package obs

import (
	"strings"
	"testing"
	"time"
)

// TestDisabledSinkAllocs pins the contract the engine's hot path relies
// on: every method of a nil collector, a nil journal, and a nil tracer
// returns without allocating (and Start/Begin never read the clock,
// returning the zero time).
func TestDisabledSinkAllocs(t *testing.T) {
	var c *Collector
	var j *Journal
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		st := c.Start()
		c.ObserveSince(StageCheck, st)
		c.Observe(StageMount, time.Millisecond)
		c.Inc(CtrStatesChecked)
		c.Add(CtrFences, 3)
		c.RecordPM(1, 2, 3, 4, 5, 6)
		j.Emit(Event{Type: "fence"})
		b := tr.Begin()
		_ = tr.ID("check", "wl", 0, 0)
		_ = tr.Span("check", b, "", Event{Workload: "wl"})
	})
	if allocs != 0 {
		t.Fatalf("disabled sink allocated %v times per op, want 0", allocs)
	}
	if !(*Collector)(nil).Start().IsZero() {
		t.Fatal("nil collector Start() read the clock")
	}
	if !(*Tracer)(nil).Begin().IsZero() {
		t.Fatal("nil tracer Begin() read the clock")
	}
	if (*Tracer)(nil).Enabled() || (*Tracer)(nil).Trace() != "" {
		t.Fatal("nil tracer not fully disabled")
	}
}

func TestCollectorObserveSnapshot(t *testing.T) {
	c := New()
	c.Observe(StageMount, 100*time.Microsecond)
	c.Observe(StageMount, 300*time.Microsecond)
	c.Observe(StageCheck, time.Millisecond)
	c.Inc(CtrStatesChecked)
	c.Add(CtrDedupHits, 4)
	c.RecordPM(10, 20, 3, 4, 5, 600)

	s := c.Snapshot()
	mount := s.Stage(StageMount)
	if mount.Count != 2 || mount.Nanos != int64(400*time.Microsecond) {
		t.Fatalf("mount stat = %+v, want count 2, 400us total", mount)
	}
	if mount.MaxNanos != int64(300*time.Microsecond) {
		t.Fatalf("mount max = %d, want 300us", mount.MaxNanos)
	}
	if mount.Avg() != 200*time.Microsecond {
		t.Fatalf("mount avg = %v", mount.Avg())
	}
	if q := mount.Quantile(0.99); q < 300*time.Microsecond {
		t.Fatalf("p99 %v below max observation", q)
	}
	if s.Count(CtrStatesChecked) != 1 || s.Count(CtrDedupHits) != 4 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Count(CtrViolations) != 0 {
		t.Fatal("untouched counter nonzero")
	}
	if s.PM.SimNanos != 600 || s.PM.StoreBytes != 10 {
		t.Fatalf("pm = %+v", s.PM)
	}
	if got, want := s.StageTotal(), 1400*time.Microsecond; got != want {
		t.Fatalf("StageTotal = %v, want %v", got, want)
	}
}

// TestMergeCommutes: snapshot merging is commutative and lossless — the
// property that makes serial and parallel censuses agree.
func TestMergeCommutes(t *testing.T) {
	a := New()
	a.Observe(StageCheck, time.Millisecond)
	a.Inc(CtrStatesChecked)
	a.RecordPM(1, 0, 0, 0, 0, 10)
	b := New()
	b.Observe(StageCheck, 3*time.Millisecond)
	b.Observe(StageOracle, time.Microsecond)
	b.Add(CtrStatesChecked, 2)

	ab, ba := a.Snapshot(), b.Snapshot()
	ab.Merge(b.Snapshot())
	ba.Merge(a.Snapshot())

	if ab.Count(CtrStatesChecked) != 3 || ba.Count(CtrStatesChecked) != 3 {
		t.Fatalf("merged counters: ab=%d ba=%d", ab.Count(CtrStatesChecked), ba.Count(CtrStatesChecked))
	}
	if ab.Stage(StageCheck) != ba.Stage(StageCheck) {
		t.Fatal("merged check stats differ by order")
	}
	if ab.Stage(StageCheck).MaxNanos != int64(3*time.Millisecond) {
		t.Fatalf("merged max = %d", ab.Stage(StageCheck).MaxNanos)
	}
	if ab.StageTotal() != ba.StageTotal() {
		t.Fatal("merged totals differ by order")
	}

	// Collector-level merge (the campaign collector) agrees too.
	camp := New()
	camp.Merge(a.Snapshot())
	camp.Merge(b.Snapshot())
	if got := camp.Snapshot(); got.Count(CtrStatesChecked) != 3 ||
		got.Stage(StageCheck) != ab.Stage(StageCheck) || got.PM != ab.PM {
		t.Fatalf("collector merge diverges from snapshot merge: %+v", got)
	}
}

func TestSnapshotRender(t *testing.T) {
	c := New()
	c.Observe(StageMount, time.Millisecond)
	c.Observe(StageCheck, 2*time.Millisecond)
	c.Inc(CtrStatesChecked)
	c.RecordPM(1, 2, 3, 4, 5, 6)
	s := c.Snapshot()
	out := s.Render(10 * time.Millisecond)
	for _, want := range []string{"mount", "check", "sum", "states-checked=1", "% wall", "pm: ", "throughput: 100.0 states/sec"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "oracle") {
		t.Fatalf("render shows empty stage:\n%s", out)
	}
	// Zero wall omits percentages, the wall-clock line, and throughput,
	// but still renders the table.
	if out := s.Render(0); !strings.Contains(out, "mount") || strings.Contains(out, "throughput") {
		t.Fatalf("wall-less render broken:\n%s", out)
	}
	var nilSnap *Snapshot
	if got := nilSnap.Render(time.Second); !strings.Contains(got, "no metrics") {
		t.Fatalf("nil render = %q", got)
	}
}

// TestRenderEdgeCases: a snapshot with no states checked renders no
// throughput line, and an all-empty (but non-nil) snapshot still renders
// a header and sum row without panicking.
func TestRenderEdgeCases(t *testing.T) {
	c := New()
	c.Observe(StageMount, time.Millisecond)
	noStates := c.Snapshot()
	out := noStates.Render(10 * time.Millisecond)
	if strings.Contains(out, "throughput") {
		t.Fatalf("throughput rendered without states checked:\n%s", out)
	}
	emptySnap := New().Snapshot()
	out = emptySnap.Render(time.Second)
	if !strings.Contains(out, "sum") || !strings.Contains(out, "stage") {
		t.Fatalf("empty snapshot render broken:\n%s", out)
	}
	if strings.Contains(out, "counters:") {
		t.Fatalf("empty snapshot rendered counters line:\n%s", out)
	}
}

// TestQuantileEdgeCases pins Quantile's boundary behavior: an empty stat
// returns 0, a single-bucket stat returns that bucket's upper edge for
// every q, and quantiles over a merged histogram reflect the combined
// observation mass, not either input alone.
func TestQuantileEdgeCases(t *testing.T) {
	if q := (StageStat{}).Quantile(0.99); q != 0 {
		t.Fatalf("empty stat quantile = %v, want 0", q)
	}

	// Single bucket: 5 observations of ~1ms all land in one log2 bucket,
	// so p01 through p100 all return the same upper edge.
	single := New()
	for i := 0; i < 5; i++ {
		single.Observe(StageCheck, time.Millisecond)
	}
	singleSnap := single.Snapshot()
	st := singleSnap.Stage(StageCheck)
	lo, hi := st.Quantile(0.01), st.Quantile(1.0)
	if lo != hi {
		t.Fatalf("single-bucket quantiles differ: p01=%v p100=%v", lo, hi)
	}
	if lo < time.Millisecond || lo > 2*time.Millisecond {
		t.Fatalf("single-bucket edge %v not bracketing 1ms", lo)
	}

	// Merged histogram: 9 fast observations from one collector, 1 slow from
	// another. The median must come from the fast mass, p99+ from the slow.
	fast, slow := New(), New()
	for i := 0; i < 9; i++ {
		fast.Observe(StageCheck, time.Microsecond)
	}
	slow.Observe(StageCheck, time.Second)
	merged := fast.Snapshot()
	merged.Merge(slow.Snapshot())
	mst := (&merged).Stage(StageCheck)
	if mst.Count != 10 {
		t.Fatalf("merged count = %d", mst.Count)
	}
	if q := mst.Quantile(0.5); q > time.Millisecond {
		t.Fatalf("merged p50 = %v, want fast-bucket edge", q)
	}
	if q := mst.Quantile(0.99); q < time.Second {
		t.Fatalf("merged p99 = %v, want slow-bucket edge", q)
	}
}

func TestNilSnapshotAccessors(t *testing.T) {
	var s *Snapshot
	if s.Count(CtrFences) != 0 || s.Stage(StageMount).Count != 0 || s.StageTotal() != 0 {
		t.Fatal("nil snapshot accessors not zero")
	}
}

// TestObserveBucketsSpan: durations land in ascending log2 buckets and
// overflow clamps to the last bucket instead of indexing out of range.
func TestObserveBucketsSpan(t *testing.T) {
	c := New()
	c.Observe(StageCheck, 0)
	c.Observe(StageCheck, time.Nanosecond)
	c.Observe(StageCheck, time.Hour)
	snap := c.Snapshot()
	st := snap.Stage(StageCheck)
	if st.Count != 3 {
		t.Fatalf("count = %d", st.Count)
	}
	var n int64
	for _, b := range st.Buckets {
		n += b
	}
	if n != 3 {
		t.Fatalf("bucket sum = %d, want 3", n)
	}
	if st.Buckets[histBuckets-1] != 1 {
		t.Fatalf("1h observation not clamped to last bucket: %v", st.Buckets[histBuckets-1])
	}
}
