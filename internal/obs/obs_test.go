package obs

import (
	"strings"
	"testing"
	"time"
)

// TestDisabledSinkAllocs pins the contract the engine's hot path relies
// on: every method of a nil collector and a nil journal returns without
// allocating (and Start never reads the clock, returning the zero time).
func TestDisabledSinkAllocs(t *testing.T) {
	var c *Collector
	var j *Journal
	allocs := testing.AllocsPerRun(100, func() {
		st := c.Start()
		c.ObserveSince(StageCheck, st)
		c.Observe(StageMount, time.Millisecond)
		c.Inc(CtrStatesChecked)
		c.Add(CtrFences, 3)
		c.RecordPM(1, 2, 3, 4, 5, 6)
		j.Emit(Event{Type: "fence"})
	})
	if allocs != 0 {
		t.Fatalf("disabled sink allocated %v times per op, want 0", allocs)
	}
	if !(*Collector)(nil).Start().IsZero() {
		t.Fatal("nil collector Start() read the clock")
	}
}

func TestCollectorObserveSnapshot(t *testing.T) {
	c := New()
	c.Observe(StageMount, 100*time.Microsecond)
	c.Observe(StageMount, 300*time.Microsecond)
	c.Observe(StageCheck, time.Millisecond)
	c.Inc(CtrStatesChecked)
	c.Add(CtrDedupHits, 4)
	c.RecordPM(10, 20, 3, 4, 5, 600)

	s := c.Snapshot()
	mount := s.Stage(StageMount)
	if mount.Count != 2 || mount.Nanos != int64(400*time.Microsecond) {
		t.Fatalf("mount stat = %+v, want count 2, 400us total", mount)
	}
	if mount.MaxNanos != int64(300*time.Microsecond) {
		t.Fatalf("mount max = %d, want 300us", mount.MaxNanos)
	}
	if mount.Avg() != 200*time.Microsecond {
		t.Fatalf("mount avg = %v", mount.Avg())
	}
	if q := mount.Quantile(0.99); q < 300*time.Microsecond {
		t.Fatalf("p99 %v below max observation", q)
	}
	if s.Count(CtrStatesChecked) != 1 || s.Count(CtrDedupHits) != 4 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Count(CtrViolations) != 0 {
		t.Fatal("untouched counter nonzero")
	}
	if s.PM.SimNanos != 600 || s.PM.StoreBytes != 10 {
		t.Fatalf("pm = %+v", s.PM)
	}
	if got, want := s.StageTotal(), 1400*time.Microsecond; got != want {
		t.Fatalf("StageTotal = %v, want %v", got, want)
	}
}

// TestMergeCommutes: snapshot merging is commutative and lossless — the
// property that makes serial and parallel censuses agree.
func TestMergeCommutes(t *testing.T) {
	a := New()
	a.Observe(StageCheck, time.Millisecond)
	a.Inc(CtrStatesChecked)
	a.RecordPM(1, 0, 0, 0, 0, 10)
	b := New()
	b.Observe(StageCheck, 3*time.Millisecond)
	b.Observe(StageOracle, time.Microsecond)
	b.Add(CtrStatesChecked, 2)

	ab, ba := a.Snapshot(), b.Snapshot()
	ab.Merge(b.Snapshot())
	ba.Merge(a.Snapshot())

	if ab.Count(CtrStatesChecked) != 3 || ba.Count(CtrStatesChecked) != 3 {
		t.Fatalf("merged counters: ab=%d ba=%d", ab.Count(CtrStatesChecked), ba.Count(CtrStatesChecked))
	}
	if ab.Stage(StageCheck) != ba.Stage(StageCheck) {
		t.Fatal("merged check stats differ by order")
	}
	if ab.Stage(StageCheck).MaxNanos != int64(3*time.Millisecond) {
		t.Fatalf("merged max = %d", ab.Stage(StageCheck).MaxNanos)
	}
	if ab.StageTotal() != ba.StageTotal() {
		t.Fatal("merged totals differ by order")
	}

	// Collector-level merge (the campaign collector) agrees too.
	camp := New()
	camp.Merge(a.Snapshot())
	camp.Merge(b.Snapshot())
	if got := camp.Snapshot(); got.Count(CtrStatesChecked) != 3 ||
		got.Stage(StageCheck) != ab.Stage(StageCheck) || got.PM != ab.PM {
		t.Fatalf("collector merge diverges from snapshot merge: %+v", got)
	}
}

func TestSnapshotRender(t *testing.T) {
	c := New()
	c.Observe(StageMount, time.Millisecond)
	c.Observe(StageCheck, 2*time.Millisecond)
	c.Inc(CtrStatesChecked)
	c.RecordPM(1, 2, 3, 4, 5, 6)
	s := c.Snapshot()
	out := s.Render(10 * time.Millisecond)
	for _, want := range []string{"mount", "check", "sum", "states-checked=1", "% wall", "pm: "} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "oracle") {
		t.Fatalf("render shows empty stage:\n%s", out)
	}
	// Zero wall omits percentages but still renders.
	if out := s.Render(0); !strings.Contains(out, "mount") {
		t.Fatalf("wall-less render broken:\n%s", out)
	}
	var nilSnap *Snapshot
	if got := nilSnap.Render(time.Second); !strings.Contains(got, "no metrics") {
		t.Fatalf("nil render = %q", got)
	}
}

func TestNilSnapshotAccessors(t *testing.T) {
	var s *Snapshot
	if s.Count(CtrFences) != 0 || s.Stage(StageMount).Count != 0 || s.StageTotal() != 0 {
		t.Fatal("nil snapshot accessors not zero")
	}
}

// TestObserveBucketsSpan: durations land in ascending log2 buckets and
// overflow clamps to the last bucket instead of indexing out of range.
func TestObserveBucketsSpan(t *testing.T) {
	c := New()
	c.Observe(StageCheck, 0)
	c.Observe(StageCheck, time.Nanosecond)
	c.Observe(StageCheck, time.Hour)
	snap := c.Snapshot()
	st := snap.Stage(StageCheck)
	if st.Count != 3 {
		t.Fatalf("count = %d", st.Count)
	}
	var n int64
	for _, b := range st.Buckets {
		n += b
	}
	if n != 3 {
		t.Fatalf("bucket sum = %d, want 3", n)
	}
	if st.Buckets[histBuckets-1] != 1 {
		t.Fatalf("1h observation not clamped to last bucket: %v", st.Buckets[histBuckets-1])
	}
}
