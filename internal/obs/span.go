package obs

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"
)

// This file is the deterministic span layer: completed spans land in the
// run journal as `"span"` events, giving the timeline tooling
// (journaltool -timeline) per-trace waterfalls without a second sink or an
// external tracing dependency.
//
// Determinism contract: trace and span IDs are pure functions of work
// coordinates, never of scheduling. A trace ID derives from (seed, shard
// index) via splitmix64; a span ID derives from (trace ID, span name,
// workload name, fence ordinal, rank/call index) via FNV-64a. Because the
// engine emits spans from the coordinator goroutine only (the same rule
// the journal events follow) and IDs carry no counter state, a serial and
// a parallel run of the same suite emit identical canonical span
// multisets — Time and DurNanos are wall-clock measurements, cleared by
// Event.CanonicalKey like every other event's.
//
// A nil *Tracer is a no-op sink: every method returns immediately without
// allocating and Begin never reads the clock, preserving the package's
// zero-alloc-when-off contract on the check hot path.

// Tracer derives deterministic trace/span IDs and emits completed spans
// into a Journal. One Tracer covers one trace: a suite run, or one shard
// of a campaign.
type Tracer struct {
	j     *Journal
	trace string
}

// NewTracer builds a tracer whose trace ID is a pure function of (seed,
// shard): the harness uses seed 0 / shard 0 for local runs, campaign
// workers use the suite hash and their shard index, and the coordinator
// uses shard -1 for its control-plane trace. Returns nil (the no-op
// tracer) when j is nil — spans only exist as journal events.
func NewTracer(j *Journal, seed uint64, shard int) *Tracer {
	if j == nil {
		return nil
	}
	id := splitmix64(seed ^ splitmix64(uint64(int64(shard))+0x9e3779b97f4a7c15))
	return &Tracer{j: j, trace: fmt.Sprintf("%016x", id)}
}

// Enabled reports whether spans land anywhere.
func (t *Tracer) Enabled() bool { return t != nil }

// Trace returns the trace ID ("" when disabled).
func (t *Tracer) Trace() string {
	if t == nil {
		return ""
	}
	return t.trace
}

// Begin returns the current time when the tracer is enabled and the zero
// time otherwise — pair with Span so a disabled tracer never reads the
// clock (mirrors Collector.Start).
func (t *Tracer) Begin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// ID derives the span ID for the given deterministic coordinates: span
// name, workload name, fence ordinal, and rank (canonical subset rank, or
// a call index for wire spans). Callers use it both to stamp a span and to
// pre-compute a parent ID before the parent span itself is emitted —
// parents are emitted at completion, after their children.
func (t *Tracer) ID(name, workload string, fence, rank int) string {
	if t == nil {
		return ""
	}
	h := fnv.New64a()
	var frame [8]byte
	h.Write([]byte(t.trace))
	h.Write([]byte{0})
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(workload))
	binary.LittleEndian.PutUint64(frame[:], uint64(int64(fence)))
	h.Write(frame[:])
	binary.LittleEndian.PutUint64(frame[:], uint64(int64(rank)))
	h.Write(frame[:])
	return fmt.Sprintf("%016x", h.Sum64())
}

// Span emits one completed span as a "span" journal event and returns its
// span ID. The event's Workload, Fence, and Rank fields are both
// attribution AND span-ID coordinates, so callers set them before the
// call; name is the span's class ("workload", "oracle", "fence",
// "wire:heartbeat", ...). start comes from Begin: Time is set to the
// span's start and DurNanos to its measured duration (a zero start leaves
// both for Emit to default). parent is the enclosing span's ID ("" for a
// trace root).
func (t *Tracer) Span(name string, start time.Time, parent string, e Event) string {
	if t == nil {
		return ""
	}
	e.Type = "span"
	e.Name = name
	e.Trace = t.trace
	e.Span = t.ID(name, e.Workload, e.Fence, e.Rank)
	e.Parent = parent
	if !start.IsZero() {
		e.Time = start
		e.DurNanos = time.Since(start).Nanoseconds()
	}
	t.j.Emit(e)
	return e.Span
}

// splitmix64 is the standard 64-bit finalizer (Vigna): a cheap, well-mixed
// bijection, good enough to spread (seed, shard) pairs into distinct trace
// IDs deterministically.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
