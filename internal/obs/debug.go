package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// ProgressInfo is the live view /progress serves: how far the run is and
// what it has found so far. Producers update it via DebugServer.SetProgress
// (or a harness Instrumentation wrapper).
type ProgressInfo struct {
	Done          int     `json:"done"`
	Total         int     `json:"total"`
	StatesChecked int     `json:"states_checked"`
	Violations    int     `json:"violations"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	// StatesPerSec is the run's crash-state checking rate so far and
	// ETASec the projected seconds to completion (workload-weighted;
	// 0 until the first workload completes). SetProgress derives both
	// from the elapsed clock when the producer leaves them zero.
	StatesPerSec float64 `json:"states_per_sec"`
	ETASec       float64 `json:"eta_sec"`
}

// derive fills the rate and ETA fields from the elapsed clock when the
// producer left them zero.
func (p *ProgressInfo) derive() {
	if p.ElapsedSec <= 0 {
		return
	}
	if p.StatesPerSec == 0 && p.StatesChecked > 0 {
		p.StatesPerSec = float64(p.StatesChecked) / p.ElapsedSec
	}
	if p.ETASec == 0 && p.Done > 0 && p.Total > p.Done {
		p.ETASec = p.ElapsedSec * float64(p.Total-p.Done) / float64(p.Done)
	}
}

// DebugServer is the opt-in live-introspection listener (-debug-addr): it
// serves an expvar-style JSON dump of the live metrics snapshot at
// /debug/vars, the standard pprof handlers under /debug/pprof/, and the
// run's progress at /progress. It reads the collector with atomic loads
// only, so watching a run costs the workers nothing.
type DebugServer struct {
	ln       net.Listener
	srv      *http.Server
	col      *Collector
	start    time.Time
	progress atomic.Value // ProgressInfo
}

// ServeDebug starts the listener on addr (host:port; port 0 picks a free
// one) reading live metrics from col (which may be nil — endpoints then
// serve empty snapshots). The server runs until Close.
func ServeDebug(addr string, col *Collector) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	ds := &DebugServer{ln: ln, col: col, start: time.Now()}
	ds.progress.Store(ProgressInfo{})

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", ds.handleVars)
	mux.HandleFunc("/debug/metrics", ds.handleMetrics)
	mux.HandleFunc("/progress", ds.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ds.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go ds.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ds, nil
}

// Addr returns the bound listen address (useful with port 0).
func (ds *DebugServer) Addr() string {
	if ds == nil {
		return ""
	}
	return ds.ln.Addr().String()
}

// SetProgress publishes the run's current progress for /progress.
// Nil-safe and lock-free.
func (ds *DebugServer) SetProgress(p ProgressInfo) {
	if ds == nil {
		return
	}
	if p.ElapsedSec == 0 {
		p.ElapsedSec = time.Since(ds.start).Seconds()
	}
	p.derive()
	ds.progress.Store(p)
}

// Close shuts the listener down.
func (ds *DebugServer) Close() error {
	if ds == nil {
		return nil
	}
	return ds.srv.Close()
}

func (ds *DebugServer) handleVars(w http.ResponseWriter, _ *http.Request) {
	snap := ds.col.Snapshot()
	writeJSON(w, map[string]any{
		"uptime_sec": time.Since(ds.start).Seconds(),
		"obs":        snap,
		"progress":   ds.progress.Load(),
	})
}

func (ds *DebugServer) handleProgress(w http.ResponseWriter, _ *http.Request) {
	p, _ := ds.progress.Load().(ProgressInfo)
	if p.ElapsedSec == 0 {
		p.ElapsedSec = time.Since(ds.start).Seconds()
	}
	p.derive()
	writeJSON(w, p)
}

// handleMetrics serves the live collector snapshot in Prometheus text
// exposition format — the same rendering the campaign coordinator mounts
// at its own /debug/metrics.
func (ds *DebugServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := ds.col.Snapshot()
	w.Header().Set("Content-Type", MetricsContentType)
	snap.WriteMetrics(w)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort debug endpoint
}
