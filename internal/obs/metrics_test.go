package obs

import (
	"bufio"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestWriteMetricsFormat: the exposition contains every counter (zeros
// included, stable series set), cumulative histogram buckets ending in
// +Inf/_sum/_count per stage, and the PM counters.
func TestWriteMetricsFormat(t *testing.T) {
	c := New()
	c.Observe(StageCheck, time.Millisecond)
	c.Observe(StageCheck, 3*time.Millisecond)
	c.Inc(CtrStatesChecked)
	c.Add(CtrDedupHits, 7)
	c.RecordPM(100, 0, 2, 3, 4, 500)
	s := c.Snapshot()

	var b strings.Builder
	s.WriteMetrics(&b)
	out := b.String()

	for _, want := range []string{
		"chipmunk_states_checked_total 1",
		"chipmunk_dedup_hit_total 7",
		"chipmunk_violations_total 0", // untouched counter still in the series set
		`chipmunk_stage_duration_seconds_bucket{stage="check",le="+Inf"} 2`,
		`chipmunk_stage_duration_seconds_count{stage="check"} 2`,
		`chipmunk_stage_duration_seconds_sum{stage="check"} 0.004`,
		`chipmunk_stage_duration_seconds_count{stage="mount"} 0`,
		"chipmunk_pm_store_bytes_total 100",
		"chipmunk_pm_sim_nanos_total 500",
		"# TYPE chipmunk_stage_duration_seconds histogram",
		"# TYPE chipmunk_states_checked_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}

	// Cumulative-bucket invariant: counts along each stage's le series
	// never decrease, and the last finite bucket equals the +Inf count.
	var prev, inf int64 = -1, -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, `{stage="check",le=`) {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &n); err != nil {
			t.Fatalf("unparsable bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = n
		if strings.Contains(line, `le="+Inf"`) {
			inf = n
		}
	}
	if inf != 2 {
		t.Fatalf("+Inf bucket = %d, want 2", inf)
	}
}

// TestWriteMetricsParses validates the output against the text-format
// line grammar: every non-comment line is `name{labels} value` with a
// parsable value — what a Prometheus scraper minimally requires.
func TestWriteMetricsParses(t *testing.T) {
	c := New()
	c.Observe(StageMount, 42*time.Microsecond)
	c.Inc(CtrWorkloads)
	snap := c.Snapshot()
	var b strings.Builder
	snap.WriteMetrics(&b)

	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("no value separator in %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		if !strings.HasPrefix(name, "chipmunk_") {
			t.Fatalf("unexpected metric name in %q", line)
		}
		var f float64
		if _, err := fmt.Sscanf(val, "%g", &f); err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		if open := strings.IndexByte(name, '{'); open >= 0 && !strings.HasSuffix(name, "}") {
			t.Fatalf("unbalanced label braces in %q", line)
		}
	}
}

// TestWriteMetricsDeterministic: rendering the same snapshot twice (and a
// structurally equal snapshot from a merged collector) is byte-identical —
// the property the CI smoke diffs on.
func TestWriteMetricsDeterministic(t *testing.T) {
	c := New()
	c.Observe(StageReplay, time.Microsecond)
	c.Add(CtrFences, 9)
	s := c.Snapshot()
	var b1, b2 strings.Builder
	s.WriteMetrics(&b1)
	s.WriteMetrics(&b2)
	if b1.String() != b2.String() {
		t.Fatal("repeated renders differ")
	}

	merged := New()
	merged.Merge(s)
	var b3 strings.Builder
	mergedSnap := merged.Snapshot()
	mergedSnap.WriteMetrics(&b3)
	if b3.String() != b1.String() {
		t.Fatalf("merged render differs:\n%s\nvs\n%s", b3.String(), b1.String())
	}
}

// TestWriteMetricsNil: a nil snapshot renders the full zero-valued series
// set without panicking.
func TestWriteMetricsNil(t *testing.T) {
	var s *Snapshot
	var b strings.Builder
	s.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"chipmunk_workloads_total 0",
		`chipmunk_stage_duration_seconds_bucket{stage="oracle",le="+Inf"} 0`,
		"chipmunk_pm_fences_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("nil metrics missing %q:\n%s", want, out)
		}
	}
}
