package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestDebugServerEndpoints(t *testing.T) {
	col := New()
	col.Observe(StageCheck, time.Millisecond)
	col.Inc(CtrStatesChecked)

	ds, err := ServeDebug("127.0.0.1:0", col)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ds.SetProgress(ProgressInfo{Done: 3, Total: 10, StatesChecked: 42, Violations: 1})

	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ds.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var vars struct {
		UptimeSec float64      `json:"uptime_sec"`
		Obs       Snapshot     `json:"obs"`
		Progress  ProgressInfo `json:"progress"`
	}
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("vars not JSON: %v", err)
	}
	if vars.Obs.Count(CtrStatesChecked) != 1 {
		t.Fatalf("vars.obs counters = %v", vars.Obs.Counters)
	}
	if vars.Progress.Done != 3 || vars.Progress.Total != 10 {
		t.Fatalf("vars.progress = %+v", vars.Progress)
	}

	var p ProgressInfo
	if err := json.Unmarshal(get("/progress"), &p); err != nil {
		t.Fatalf("progress not JSON: %v", err)
	}
	if p.StatesChecked != 42 || p.Violations != 1 {
		t.Fatalf("progress = %+v", p)
	}
	if p.ElapsedSec < 0 {
		t.Fatalf("elapsed = %v", p.ElapsedSec)
	}

	// pprof index is mounted (the profile endpoints themselves block).
	if body := get("/debug/pprof/"); len(body) == 0 {
		t.Fatal("pprof index empty")
	}

	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	// Nil receiver contract.
	var nilDS *DebugServer
	nilDS.SetProgress(ProgressInfo{})
	if nilDS.Addr() != "" || nilDS.Close() != nil {
		t.Fatal("nil DebugServer methods not no-ops")
	}
}
