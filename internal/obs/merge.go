package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// CanonicalEvents order-normalizes and concatenates journal streams into
// one canonical stream: every event's wall-clock fields (Time, DurNanos)
// are cleared and the union is sorted by CanonicalKey. Because the journal
// determinism contract is stated over exactly that multiset, the output is
// a pure function of what the runs did — merging the per-worker journals
// of a distributed campaign in any order, from any scheduling, yields
// byte-identical streams. Inputs are not mutated.
func CanonicalEvents(lists ...[]Event) []Event {
	var total int
	for _, l := range lists {
		total += len(l)
	}
	out := make([]Event, 0, total)
	for _, l := range lists {
		for _, e := range l {
			e.Time = time.Time{}
			e.DurNanos = 0
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].CanonicalKey() < out[j].CanonicalKey()
	})
	return out
}

// WriteEvents writes events as JSONL — the same format Journal.Emit
// appends and ReadJournal parses, so a merged stream round-trips through
// journaltool (-strict included).
func WriteEvents(w io.Writer, events []Event) error {
	for _, e := range events {
		line, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}
