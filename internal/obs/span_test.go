package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestTracerDeterministicIDs pins the span determinism contract: trace and
// span IDs are pure functions of their coordinates — two tracers built from
// the same (seed, shard) agree on every ID, and changing any coordinate
// changes the ID.
func TestTracerDeterministicIDs(t *testing.T) {
	j1, j2 := NewJournal(&bytes.Buffer{}), NewJournal(&bytes.Buffer{})
	a := NewTracer(j1, 42, 7)
	b := NewTracer(j2, 42, 7)
	if a.Trace() == "" || a.Trace() != b.Trace() {
		t.Fatalf("trace IDs diverge: %q vs %q", a.Trace(), b.Trace())
	}
	if a.ID("check", "wl", 1, 2) != b.ID("check", "wl", 1, 2) {
		t.Fatal("span IDs diverge for identical coordinates")
	}
	base := a.ID("check", "wl", 1, 2)
	for _, other := range []string{
		a.ID("fence", "wl", 1, 2),
		a.ID("check", "wl2", 1, 2),
		a.ID("check", "wl", 3, 2),
		a.ID("check", "wl", 1, 4),
		NewTracer(j1, 42, 8).ID("check", "wl", 1, 2),
		NewTracer(j1, 43, 7).ID("check", "wl", 1, 2),
	} {
		if other == base {
			t.Fatalf("distinct coordinates collided on %q", base)
		}
	}
}

// TestTracerSpanEvent: Span emits a well-formed "span" journal event whose
// ID matches ID() for the same coordinates, stamps start/duration, and the
// canonical key (wall-clock cleared) is reproducible.
func TestTracerSpanEvent(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	tr := NewTracer(j, 1, 0)

	parent := tr.ID("workload", "wl", 0, 0)
	start := tr.Begin()
	id := tr.Span("check", start, parent, Event{Workload: "wl", FS: "memfs"})
	if id != tr.ID("check", "wl", 0, 0) {
		t.Fatalf("Span returned %q, ID derives %q", id, tr.ID("check", "wl", 0, 0))
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}

	events, skipped, err := ReadJournal(&buf)
	if err != nil || skipped != 0 || len(events) != 1 {
		t.Fatalf("read: %d events, %d skipped, err %v", len(events), skipped, err)
	}
	e := events[0]
	if e.Type != "span" || e.Name != "check" || e.Trace != tr.Trace() ||
		e.Span != id || e.Parent != parent || e.Workload != "wl" || e.FS != "memfs" {
		t.Fatalf("span event = %+v", e)
	}
	if e.Time.IsZero() || e.DurNanos < 0 {
		t.Fatalf("span timing not stamped: %+v", e)
	}

	// Canonical key clears wall-clock fields, so two emissions of the same
	// span coordinates have equal keys.
	var buf2 bytes.Buffer
	j2 := NewJournal(&buf2)
	tr2 := NewTracer(j2, 1, 0)
	time.Sleep(time.Millisecond)
	tr2.Span("check", tr2.Begin(), parent, Event{Workload: "wl", FS: "memfs"})
	j2.Flush()
	events2, _, _ := ReadJournal(&buf2)
	if events[0].CanonicalKey() != events2[0].CanonicalKey() {
		t.Fatalf("canonical keys diverge:\n%s\n%s",
			events[0].CanonicalKey(), events2[0].CanonicalKey())
	}
}

// TestTracerZeroStart: a zero start time (what a disabled Begin returns)
// leaves Time for Emit to stamp and DurNanos zero — spans never invent
// durations they did not measure.
func TestTracerZeroStart(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	tr := NewTracer(j, 0, 0)
	tr.Span("wire:lease", time.Time{}, "", Event{Rank: 3})
	j.Flush()
	events, _, _ := ReadJournal(&buf)
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].DurNanos != 0 {
		t.Fatalf("zero-start span has duration %d", events[0].DurNanos)
	}
	if events[0].Time.IsZero() {
		t.Fatal("Emit did not stamp Time")
	}
}

// TestNewTracerNilJournal: no journal means no tracer — the nil no-op.
func TestNewTracerNilJournal(t *testing.T) {
	if tr := NewTracer(nil, 1, 2); tr != nil {
		t.Fatalf("NewTracer(nil) = %v, want nil", tr)
	}
	var tr *Tracer
	if got := tr.Span("x", time.Now(), "", Event{}); got != "" {
		t.Fatalf("nil Span = %q", got)
	}
	if got := tr.ID("x", "y", 0, 0); got != "" {
		t.Fatalf("nil ID = %q", got)
	}
}

// TestTraceIDFormat: trace and span IDs are 16 lowercase hex digits —
// stable enough to grep and to key maps in the timeline tooling.
func TestTraceIDFormat(t *testing.T) {
	j := NewJournal(&bytes.Buffer{})
	tr := NewTracer(j, 0, -1) // the coordinator's control-plane shard
	for _, id := range []string{tr.Trace(), tr.ID("shard-lease", "", 0, 5)} {
		if len(id) != 16 || strings.ToLower(id) != id {
			t.Fatalf("ID %q not 16 lowercase hex digits", id)
		}
	}
}
