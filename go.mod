module chipmunk

go 1.22
