// Command chipmunk runs Chipmunk crash-consistency test suites against a
// PM file system, like the paper's ACE frontend (§3.4.1):
//
//	chipmunk -fs nova -suite seq1               # developer loop: < seconds
//	chipmunk -fs nova -bugs all -suite seq2     # as-published NOVA, all pairs
//	chipmunk -fs pmfs -bugs 13,16 -suite seq1   # selected injected bugs
//	chipmunk -fs ext4-dax -suite seq1dax        # weak system, fsync-gated
//	chipmunk -fs nova -suite seq2 -j 8          # suite sharded across workers
//	chipmunk -fs nova -suite seq1 -workers 4    # crash states checked in parallel
//
// Distributed campaigns shard the suite across machines (or processes):
//
//	chipmunk -fs nova -suite seq2 -serve :9090 -resume camp.ckpt
//	chipmunk -worker host:9090 -j 4             # on each worker machine
//
// The coordinator leases numbered shards to workers over HTTP/JSON,
// re-dispatches expired leases, credits each shard at most once, and
// appends completed shards to the -resume checkpoint so a killed
// coordinator restarts where it left off. The merged census is
// byte-identical to a serial run of the same suite.
//
// The -bugs flag selects which of the paper's Table 1 bugs are injected:
// "none" (the fixed systems, default), "all" (as published), or a
// comma-separated ID list. -faults turns on pmem fault injection (torn
// stores, bit corruption, media errors) against the sandboxed checker.
// Ctrl-C cancels the run and prints the partial census; a second Ctrl-C
// force-exits. Under -serve, the first Ctrl-C instead stops issuing leases
// and drains in-flight shards to the checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"chipmunk/internal/ace"
	"chipmunk/internal/campaign"
	"chipmunk/internal/core"
	"chipmunk/internal/harness"
	"chipmunk/internal/pmem"
	"chipmunk/internal/report"
	"chipmunk/internal/workload"
)

func main() {
	var (
		spec      = harness.BindFlags(flag.CommandLine, "nova", "none", 0)
		ospec     = harness.BindObsFlags(flag.CommandLine)
		suite     = flag.String("suite", "seq1", "workload suite: seq1, seq2, seq3m, seq1dax, seq2dax")
		max       = flag.Int("max", 0, "stop after N workloads (0 = whole suite)")
		verbose   = flag.Bool("v", false, "print every violation")
		stopOne   = flag.Bool("stop-on-bug", false, "stop at the first violating workload")
		repro     = flag.String("repro", "", "run a single reproducer file (workload.Format syntax) instead of a suite")
		jobs      = flag.Int("j", 1, "suite-level workers (like the paper's VM sharding; 0 = all cores)")
		outDir    = flag.String("o", "", "write triaged bug reports and reproducers to this directory")
		faults    = flag.Bool("faults", false, "inject pmem faults (torn stores, bit flips, media errors) into crash states")
		faultSeed = flag.Uint64("fault-seed", 1, "deterministic seed for -faults")
		serve     = flag.String("serve", "", "coordinate a distributed campaign on this host:port instead of running locally")
		workerFor = flag.String("worker", "", "join the distributed campaign coordinated at this host:port (spec comes from the coordinator)")
		resume    = flag.String("resume", "", "(with -serve) append completed shards to this checkpoint file and skip the shards it already records")
		shardSize = flag.Int("shard-size", campaign.DefaultShardSize, "(with -serve) workloads per lease")
		leaseTTL  = flag.Duration("lease", campaign.DefaultLeaseTTL, "(with -serve) lease deadline before a shard is re-dispatched")
	)
	flag.Parse()

	if *workerFor != "" {
		runWorker(*workerFor, ospec, *jobs)
		return
	}

	opts, err := spec.Options()
	fatalIf(err)
	if *faults {
		opts.Faults = pmem.DefaultFaults(*faultSeed)
	}
	inst, err := ospec.Instrument()
	fatalIf(err)
	defer inst.Close() //nolint:errcheck // re-checked explicitly below
	inst.Apply(&opts)
	sys, cfg, err := opts.Resolve()
	fatalIf(err)

	if *serve != "" {
		if *repro != "" {
			fatalIf(errors.New("-serve shards a named suite; -repro runs locally"))
		}
		cspec := campaign.Spec{
			FS: *spec.FS, Bugs: *spec.Bugs, Suite: *suite, Max: *max,
			Cap: opts.Cap, Workers: opts.Workers,
			CheckTimeoutNanos: int64(opts.CheckTimeout),
			ExhaustiveLimit:   opts.ExhaustiveLimit,
			FullCopy:          opts.DisableDeltaMaterialize,
			Faults:            *faults, FaultSeed: *faultSeed,
			Stats: *ospec.Stats,
		}
		runCoordinator(*serve, cspec, *shardSize, *leaseTTL, *resume, sys, inst, ospec, *verbose, *outDir)
		return
	}

	var suiteWs []workload.Workload
	if *repro != "" {
		data, err := os.ReadFile(*repro)
		fatalIf(err)
		w, err := workload.Parse(string(data))
		fatalIf(err)
		if w.Name == "" {
			w.Name = *repro
		}
		suiteWs = []workload.Workload{w}
		*suite = "repro"
	} else {
		suiteWs, err = ace.SuiteByName(*suite)
		fatalIf(err)
	}
	if *max > 0 && *max < len(suiteWs) {
		suiteWs = suiteWs[:*max]
	}

	faultNote := ""
	if *faults {
		faultNote = fmt.Sprintf(", faults on (seed %d)", *faultSeed)
	}
	fmt.Printf("chipmunk: %s (bugs %s), suite %s: %d workloads, cap=%d%s\n",
		sys.Name, opts.Bugs, *suite, len(suiteWs), opts.Cap, faultNote)

	ctx, stop := harness.SignalContext(context.Background())
	defer stop()

	inst.EmitRun(sys.Name, len(suiteWs))
	if addr := inst.Debug.Addr(); addr != "" {
		fmt.Printf("debug listener on http://%s (/debug/vars, /debug/pprof/, /progress)\n", addr)
	}

	runOpts := []harness.Option{harness.WithWorkers(*jobs)}
	if *stopOne {
		runOpts = append(runOpts, harness.WithStopOnFirstBug())
	}
	lastBugs := 0
	runOpts = append(runOpts, harness.WithProgress(func(done, total int, c harness.Census) {
		inst.Progress(done, total, c)
		if *verbose && c.Violations > lastBugs {
			lastBugs = c.Violations
			fmt.Printf("  BUG count now %d after %d/%d workloads\n", c.Violations, done, total)
		}
		if done%500 == 0 {
			fmt.Printf("  ... %d/%d workloads, %d crash states (%d deduped, %d truncated fences, %d quarantined)\n",
				done, total, c.StatesChecked, c.StatesDeduped, c.TruncatedFences,
				len(c.Quarantined)+c.SuppressedQuarantine)
		}
	}))

	census, viol, err := harness.Run(ctx, cfg, suiteWs, runOpts...)
	if err != nil && !errors.Is(err, context.Canceled) {
		fatalIf(err)
	}
	interrupted := errors.Is(err, context.Canceled)
	modeNote := fmt.Sprintf("j=%d, workers=%d", *jobs, opts.Workers)
	finish(sys, census, viol, interrupted, modeNote, *verbose, *outDir, inst, ospec, nil)
}

// runWorker is the -worker mode: the engine spec comes from the
// coordinator, so only the local knobs (-j, observability flags) apply.
func runWorker(addr string, ospec *harness.ObsFlagSpec, jobs int) {
	inst, err := ospec.Instrument()
	fatalIf(err)
	ctx, stop := harness.SignalContext(context.Background())
	defer stop()
	err = campaign.RunWorker(ctx, campaign.WorkerConfig{
		Addr:    addr,
		Jobs:    jobs,
		Journal: inst.Journal,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	stop()
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		inst.Close() //nolint:errcheck // already failing
		fatalIf(err)
	}
	if inst.Journal != nil {
		fmt.Printf("journal: %d events written\n", inst.Journal.Events())
	}
	fatalIf(inst.Close())
	if interrupted {
		os.Exit(130)
	}
}

// runCoordinator is the -serve mode: shard the suite, lease shards to
// workers, fold the credited results, and report exactly like a local run.
func runCoordinator(addr string, cspec campaign.Spec, shardSize int, leaseTTL time.Duration,
	checkpoint string, sys harness.System, inst *harness.Instrumentation,
	ospec *harness.ObsFlagSpec, verbose bool, outDir string) {
	coord, err := campaign.NewCoordinator(campaign.CoordinatorConfig{
		Spec:           cspec,
		ShardSize:      shardSize,
		LeaseTTL:       leaseTTL,
		CheckpointPath: checkpoint,
		Progress: func(done, total int, c harness.Census) {
			inst.Progress(done, total, c)
			fmt.Printf("  ... %d/%d workloads (%d crash states, %d violations)\n",
				done, total, c.StatesChecked, c.Violations)
		},
		Logf: func(format string, args ...any) {
			if verbose {
				fmt.Printf(format+"\n", args...)
			}
		},
	})
	fatalIf(err)
	srv, err := campaign.ListenAndServe(addr, coord)
	fatalIf(err)
	info := coord.Info()
	fmt.Printf("chipmunk coordinator on %s: campaign %s, %s (bugs %s), suite %s: %d workloads in %d shards of %d, fingerprint %s, lease %v\n",
		srv.Addr(), info.CampaignID, sys.Name, cspec.Bugs, cspec.Suite,
		info.Workloads, info.Shards, info.ShardSize, info.SuiteHash, leaseTTL)
	inst.EmitRun(sys.Name, info.Workloads)
	if daddr := inst.Debug.Addr(); daddr != "" {
		fmt.Printf("debug listener on http://%s (/progress aggregates across workers)\n", daddr)
	}

	// First SIGINT: stop issuing leases, drain in-flight shards to the
	// checkpoint, report the partial census. Second: force-exit 130.
	ctx, stop := harness.SignalContextNotify(context.Background(),
		"interrupt: draining — no new leases; crediting in-flight shards to the checkpoint (interrupt again to force exit)")
	defer stop()
	census, viol, err := coord.Wait(ctx)
	srv.Close() //nolint:errcheck // listener teardown on the way out
	stop()
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		coord.Close() //nolint:errcheck // already failing
		fatalIf(err)
	}
	fatalIf(coord.Close())
	finish(sys, census, viol, interrupted, "distributed", verbose, outDir, inst, ospec, func() {
		st := coord.Stats()
		fmt.Printf("%s\n", st)
		if outDir == "" {
			return
		}
		wr, err := report.NewWriter(outDir)
		fatalIf(err)
		path, err := wr.WriteCampaignSummary(report.CampaignSummary{
			CampaignID: info.CampaignID, FS: sys.Name, Suite: cspec.Suite,
			SuiteHash: info.SuiteHash, Workloads: info.Workloads,
			Shards: info.Shards, ShardSize: info.ShardSize,
			Resumed: st.Resumed, Redispatched: st.Redispatched,
			Duplicates: st.Duplicates, Rejected: st.Rejected,
			PerWorker:   st.PerWorker,
			Fingerprint: campaign.Fingerprint(census, viol),
		})
		fatalIf(err)
		fmt.Printf("wrote campaign summary to %s\n", path)
	})
}

// finish prints the census summary, triaged clusters, and optional
// reports, closes the instrumentation, and exits with the shared status
// convention (1 = violations found, 130 = interrupted). extra, when
// non-nil, runs after the census block (campaign stats).
func finish(sys harness.System, census *harness.Census, viol []core.Violation,
	interrupted bool, modeNote string, verbose bool, outDir string,
	inst *harness.Instrumentation, ospec *harness.ObsFlagSpec, extra func()) {
	clusters := core.Triage(viol)
	status := "done"
	if interrupted {
		status = "interrupted (partial census)"
	}
	fmt.Printf("\n%s: %d workloads, %d crash states (%d deduped, %d truncated fences), %v (%s)\n",
		status, census.Workloads, census.StatesChecked, census.StatesDeduped,
		census.TruncatedFences, census.Elapsed.Round(time.Millisecond), modeNote)
	if n := len(census.Quarantined) + census.SuppressedQuarantine; n > 0 || census.RetriedChecks > 0 {
		fmt.Printf("sandbox: %d states quarantined (%d suppressed past ledger cap), %d transient retries\n",
			n, census.SuppressedQuarantine, census.RetriedChecks)
		if verbose {
			for _, q := range census.Quarantined {
				fmt.Printf("  %s\n", q)
			}
		}
	}
	if extra != nil {
		extra()
	}
	fmt.Printf("reports: %d; triaged clusters: %d\n", len(viol), len(clusters))
	for i, c := range clusters {
		if verbose {
			fmt.Printf("\ncluster %d (%d reports):\n%s\n", i+1, c.Count, c.Representative)
		} else {
			fmt.Printf("cluster %d (%d reports): %s (%s)\n",
				i+1, c.Count, c.Representative.Kind, c.Representative.SysName)
		}
	}
	statsOut := inst.RenderStatsSnapshot(census.Obs, census.Elapsed)
	if statsOut == "" {
		statsOut = inst.RenderStats(census.Elapsed)
	}
	if statsOut != "" {
		fmt.Printf("\n%s", statsOut)
	}
	if inst.Journal != nil {
		fmt.Printf("journal: %d events written to %s\n", inst.Journal.Events(), *ospec.Journal)
	}
	writeReports(outDir, sys.Name, clusters, census)
	// os.Exit skips defers: flush the journal and stop the listener first.
	fatalIf(inst.Close())
	if len(viol) > 0 {
		os.Exit(1)
	}
	if interrupted {
		os.Exit(130)
	}
}

// writeReports persists triaged clusters and the quarantine ledger when -o
// is given.
func writeReports(dir, fsName string, clusters []*core.Cluster, census *harness.Census) {
	if dir == "" || (len(clusters) == 0 && len(census.Quarantined) == 0) {
		return
	}
	wr, err := report.NewWriter(dir)
	fatalIf(err)
	if len(clusters) > 0 {
		paths, err := wr.WriteClusters(fsName, clusters)
		fatalIf(err)
		fmt.Printf("\nwrote %d report directories under %s\n", len(paths), dir)
	}
	qpath, err := wr.WriteQuarantine(fsName, census.Quarantined, census.SuppressedQuarantine)
	fatalIf(err)
	if qpath != "" {
		fmt.Printf("wrote quarantine ledger to %s\n", qpath)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "chipmunk:", err)
		os.Exit(2)
	}
}
