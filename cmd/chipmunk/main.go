// Command chipmunk runs Chipmunk crash-consistency test suites against a
// PM file system, like the paper's ACE frontend (§3.4.1):
//
//	chipmunk -fs nova -suite seq1               # developer loop: < seconds
//	chipmunk -fs nova -bugs all -suite seq2     # as-published NOVA, all pairs
//	chipmunk -fs pmfs -bugs 13,16 -suite seq1   # selected injected bugs
//	chipmunk -fs ext4-dax -suite seq1dax        # weak system, fsync-gated
//
// The -bugs flag selects which of the paper's Table 1 bugs are injected:
// "none" (the fixed systems, default), "all" (as published), or a
// comma-separated ID list.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"chipmunk/internal/ace"
	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/harness"
	"chipmunk/internal/report"
	"chipmunk/internal/workload"
)

func main() {
	var (
		fsName  = flag.String("fs", "nova", "file system: nova, nova-fortis, pmfs, winefs, splitfs, ext4-dax, xfs-dax")
		bugSpec = flag.String("bugs", "none", `injected bugs: "none", "all", or comma-separated IDs (e.g. "4,5")`)
		suite   = flag.String("suite", "seq1", "workload suite: seq1, seq2, seq3m, seq1dax, seq2dax")
		cap     = flag.Int("cap", 0, "max in-flight writes replayed per crash state (0 = exhaustive)")
		max     = flag.Int("max", 0, "stop after N workloads (0 = whole suite)")
		verbose = flag.Bool("v", false, "print every violation")
		stopOne = flag.Bool("stop-on-bug", false, "stop at the first violating workload")
		repro   = flag.String("repro", "", "run a single reproducer file (workload.Format syntax) instead of a suite")
		jobs    = flag.Int("j", 1, "parallel workers (like the paper's VM sharding; disables progress/stop-on-bug)")
		outDir  = flag.String("o", "", "write triaged bug reports and reproducers to this directory")
	)
	flag.Parse()

	sys, err := harness.SystemByName(*fsName)
	fatalIf(err)
	set, err := parseBugs(*bugSpec)
	fatalIf(err)
	var suiteWs []workload.Workload
	if *repro != "" {
		data, err := os.ReadFile(*repro)
		fatalIf(err)
		w, err := workload.Parse(string(data))
		fatalIf(err)
		if w.Name == "" {
			w.Name = *repro
		}
		suiteWs = []workload.Workload{w}
		*suite = "repro"
	} else {
		suiteWs, err = pickSuite(*suite)
		fatalIf(err)
	}
	if *max > 0 && *max < len(suiteWs) {
		suiteWs = suiteWs[:*max]
	}

	cfg := harness.ConfigFor(sys, set, *cap)
	fmt.Printf("chipmunk: %s (bugs %s), suite %s: %d workloads, cap=%d\n",
		sys.Name, set, *suite, len(suiteWs), *cap)

	if *jobs > 1 {
		census, viol, err := harness.RunSuiteParallel(cfg, suiteWs, *jobs)
		fatalIf(err)
		clusters := core.Triage(viol)
		fmt.Printf("\ndone: %d workloads, %d crash states, %v (x%d workers)\n",
			census.Workloads, census.StatesChecked, census.Elapsed.Round(time.Millisecond), *jobs)
		fmt.Printf("reports: %d; triaged clusters: %d\n", len(viol), len(clusters))
		for i, c := range clusters {
			fmt.Printf("\ncluster %d (%d reports):\n%s\n", i+1, c.Count, c.Representative)
		}
		writeReports(*outDir, sys.Name, clusters)
		if len(viol) > 0 {
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	var states, buggyWorkloads int
	var all []core.Violation
	for i, w := range suiteWs {
		res, err := core.Run(cfg, w)
		fatalIf(err)
		states += res.StatesChecked
		if res.Buggy() {
			buggyWorkloads++
			all = append(all, res.Violations...)
			if *verbose {
				for _, v := range res.Violations {
					fmt.Printf("\n%s\n", v)
				}
			} else {
				fmt.Printf("  BUG on %s: %s (%s)\n", w.Name, res.Violations[0].Kind, res.Violations[0].SysName)
			}
			if *stopOne {
				break
			}
		}
		if (i+1)%500 == 0 {
			fmt.Printf("  ... %d/%d workloads, %d crash states\n", i+1, len(suiteWs), states)
		}
	}
	elapsed := time.Since(start)

	clusters := core.Triage(all)
	fmt.Printf("\ndone: %d workloads, %d crash states, %v\n", len(suiteWs), states, elapsed.Round(time.Millisecond))
	fmt.Printf("violating workloads: %d; reports: %d; triaged clusters: %d\n", buggyWorkloads, len(all), len(clusters))
	for i, c := range clusters {
		fmt.Printf("\ncluster %d (%d reports):\n%s\n", i+1, c.Count, c.Representative)
	}
	writeReports(*outDir, sys.Name, clusters)
	if len(all) > 0 {
		os.Exit(1)
	}
}

// writeReports persists triaged clusters when -o is given.
func writeReports(dir, fsName string, clusters []*core.Cluster) {
	if dir == "" || len(clusters) == 0 {
		return
	}
	wr, err := report.NewWriter(dir)
	fatalIf(err)
	paths, err := wr.WriteClusters(fsName, clusters)
	fatalIf(err)
	fmt.Printf("\nwrote %d report directories under %s\n", len(paths), dir)
}

func parseBugs(spec string) (bugs.Set, error) {
	switch spec {
	case "none", "":
		return bugs.None(), nil
	case "all":
		return bugs.AllSet(), nil
	}
	set := bugs.Set{}
	for _, part := range strings.Split(spec, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad bug id %q", part)
		}
		if _, ok := bugs.Lookup(bugs.ID(id)); !ok {
			return nil, fmt.Errorf("unknown bug id %d", id)
		}
		set = set.With(bugs.ID(id))
	}
	return set, nil
}

func pickSuite(name string) ([]workload.Workload, error) {
	switch name {
	case "seq1":
		return ace.Seq1(), nil
	case "seq2":
		return ace.Seq2(), nil
	case "seq3m":
		return ace.Seq3Metadata(), nil
	case "seq1dax":
		return ace.Seq1Dax(), nil
	case "seq2dax":
		return ace.Seq2Dax(), nil
	default:
		return nil, fmt.Errorf("unknown suite %q", name)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "chipmunk:", err)
		os.Exit(2)
	}
}
