// Command chipmunk runs Chipmunk crash-consistency test suites against a
// PM file system, like the paper's ACE frontend (§3.4.1):
//
//	chipmunk -fs nova -suite seq1               # developer loop: < seconds
//	chipmunk -fs nova -bugs all -suite seq2     # as-published NOVA, all pairs
//	chipmunk -fs pmfs -bugs 13,16 -suite seq1   # selected injected bugs
//	chipmunk -fs ext4-dax -suite seq1dax        # weak system, fsync-gated
//	chipmunk -fs nova -suite seq2 -j 8          # suite sharded across workers
//	chipmunk -fs nova -suite seq1 -workers 4    # crash states checked in parallel
//
// Distributed campaigns shard the suite across machines (or processes):
//
//	chipmunk -fs nova -suite seq2 -serve :9090 -resume camp.ckpt
//	chipmunk -worker host:9090 -j 4             # on each worker machine
//
// The coordinator leases numbered shards to workers over HTTP/JSON,
// re-dispatches expired leases, credits each shard at most once, and
// appends completed shards to the -resume checkpoint so a killed
// coordinator restarts where it left off. The merged census is
// byte-identical to a serial run of the same suite.
//
// The -bugs flag selects which of the paper's Table 1 bugs are injected:
// "none" (the fixed systems, default), "all" (as published), or a
// comma-separated ID list. -faults turns on pmem fault injection (torn
// stores, bit corruption, media errors) against the sandboxed checker.
// Ctrl-C cancels the run and prints the partial census; a second Ctrl-C
// force-exits. Under -serve, the first Ctrl-C instead stops issuing leases
// and drains in-flight shards to the checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"chipmunk/internal/ace"
	"chipmunk/internal/campaign"
	"chipmunk/internal/core"
	"chipmunk/internal/fleet"
	"chipmunk/internal/harness"
	"chipmunk/internal/report"
	"chipmunk/internal/workload"
)

func main() {
	var (
		cli       = harness.BindCLI(flag.CommandLine, harness.CLIDefaults{FS: "nova"})
		suite     = flag.String("suite", "seq1", "workload suite: seq1, seq2, seq3m, seq1dax, seq2dax, kv, kv-smoke")
		max       = flag.Int("max", 0, "stop after N workloads (0 = whole suite)")
		stopOne   = flag.Bool("stop-on-bug", false, "stop at the first violating workload")
		repro     = flag.String("repro", "", "run a single reproducer file (workload.Format syntax) instead of a suite")
		serve     = flag.String("serve", "", "coordinate a distributed campaign on this host:port instead of running locally")
		workerFor = flag.String("worker", "", "join the distributed campaign coordinated at this host:port (spec comes from the coordinator)")
		resume    = flag.String("resume", "", "(with -serve) append completed shards to this checkpoint file and skip the shards it already records")
		shardSize = flag.Int("shard-size", campaign.DefaultShardSize, "(with -serve) workloads per lease")
		leaseTTL  = flag.Duration("lease", campaign.DefaultLeaseTTL, "(with -serve) lease deadline before a shard is re-dispatched")

		shardRetries = flag.Int("shard-retries", campaign.DefaultShardRetries,
			"(with -serve) failed dispatch attempts before a shard is quarantined instead of re-dispatched")
		retryQuar = flag.Bool("retry-quarantined", false,
			"(with -serve -resume) re-run the shards the checkpoint records as quarantined")
		wireFaults = flag.Uint64("wire-faults", 0,
			"(with -serve) seed the deterministic wire-fault injector — chaos testing only (0 = off)")
		shardTimeout = flag.Duration("shard-timeout", campaign.DefaultShardTimeout,
			"(with -worker) watchdog deadline per shard engine call (negative = no watchdog)")
		poisonShard = flag.Int("poison-shard", -1,
			"(with -worker) chaos hook: panic on this shard id to model a crash-looping workload (-1 = off)")

		fuzzMode = flag.Bool("fuzz", false,
			"(with -serve) coordinate a distributed coverage-guided fuzzing soak instead of a suite campaign")
		budget = flag.String("budget", "",
			"(with -serve -fuzz) soak budget: a duration (\"2h\") or a total exec count (\"2000\"; exec budgets make the soak byte-reproducible)")
		fuzzSeed = flag.Int64("fuzz-seed", 1,
			"(with -serve -fuzz) master fuzzing seed; round r runs with RNG stream splitmix64(seed, r)")
		roundExecs = flag.Int("round-execs", fleet.DefaultRoundExecs,
			"(with -serve -fuzz) fuzzing iterations per round lease")
		genRounds = flag.Int("gen-rounds", fleet.DefaultGenRounds,
			"(with -serve -fuzz) rounds per generation (the corpus-fold barrier width)")
	)
	flag.Parse()

	// -app changes the defaults: the KV suite, and (without an explicit
	// -fs) a sweep over every supported file system. -fuzz changes the -cap
	// default to the fuzzer's 2 (the paper's choice for open-ended search).
	fsExplicit, suiteExplicit, capExplicit := false, false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "fs":
			fsExplicit = true
		case "suite":
			suiteExplicit = true
		case "cap":
			capExplicit = true
		}
	})
	if cli.App != "" && !suiteExplicit {
		*suite = "kv"
	}

	if *workerFor != "" {
		runWorker(*workerFor, cli, cli.Jobs, *shardTimeout, *poisonShard)
		return
	}

	opts, err := cli.Options()
	fatalIf(err)
	inst, err := cli.Instrument()
	fatalIf(err)
	defer inst.Close() //nolint:errcheck // re-checked explicitly below
	inst.Apply(&opts)

	if *fuzzMode && *serve == "" {
		fatalIf(errors.New("-fuzz coordinates a distributed soak and needs -serve; for local fuzzing use chipmunkfuzz"))
	}

	if *serve != "" {
		if *repro != "" {
			fatalIf(errors.New("-serve shards a named suite; -repro runs locally"))
		}
		sys, _, err := opts.Resolve()
		fatalIf(err)
		if *fuzzMode {
			capVal := opts.Cap
			if !capExplicit {
				capVal = 2
			}
			fspec := campaign.Spec{
				FS: cli.FS, Bugs: cli.Bugs,
				Cap: capVal, Workers: opts.Workers,
				CheckTimeoutNanos: int64(opts.CheckTimeout),
				ExhaustiveLimit:   opts.ExhaustiveLimit,
				FullCopy:          opts.DisableDeltaMaterialize,
				Faults:            cli.Faults, FaultSeed: cli.FaultSeed,
				Stats: cli.Stats,
				App:   cli.App, AppBugs: cli.AppBugs,
				Fuzz:  true, FuzzSeed: *fuzzSeed,
				RoundExecs: *roundExecs, GenRounds: *genRounds,
			}
			execs, dur, err := fleet.ParseBudget(*budget)
			fatalIf(err)
			fspec.BudgetExecs, fspec.BudgetNanos = execs, int64(dur)
			runFuzzCoordinator(*serve, fspec, coordinatorKnobs{
				leaseTTL: *leaseTTL, checkpoint: *resume,
				shardRetries: *shardRetries, wireFaultSeed: *wireFaults,
			}, sys, inst, cli)
			return
		}
		cspec := campaign.Spec{
			FS: cli.FS, Bugs: cli.Bugs, Suite: *suite, Max: *max,
			Cap: opts.Cap, Workers: opts.Workers,
			CheckTimeoutNanos: int64(opts.CheckTimeout),
			ExhaustiveLimit:   opts.ExhaustiveLimit,
			FullCopy:          opts.DisableDeltaMaterialize,
			Faults:            cli.Faults, FaultSeed: cli.FaultSeed,
			Stats: cli.Stats,
			App:   cli.App, AppBugs: cli.AppBugs,
		}
		runCoordinator(*serve, cspec, coordinatorKnobs{
			shardSize: *shardSize, leaseTTL: *leaseTTL, checkpoint: *resume,
			shardRetries: *shardRetries, retryQuarantined: *retryQuar, wireFaultSeed: *wireFaults,
		}, sys, inst, cli, cli.Verbose, cli.OutDir)
		return
	}

	var suiteWs []workload.Workload
	if *repro != "" {
		data, err := os.ReadFile(*repro)
		fatalIf(err)
		w, err := workload.Parse(string(data))
		fatalIf(err)
		if w.Name == "" {
			w.Name = *repro
		}
		suiteWs = []workload.Workload{w}
		*suite = "repro"
	} else {
		suiteWs, err = ace.SuiteByName(*suite)
		fatalIf(err)
	}
	if *max > 0 && *max < len(suiteWs) {
		suiteWs = suiteWs[:*max]
	}

	if cli.App != "" {
		runApp(cli, opts, *suite, suiteWs, fsExplicit, inst)
		return
	}

	sys, cfg, err := opts.Resolve()
	fatalIf(err)

	faultNote := ""
	if cli.Faults {
		faultNote = fmt.Sprintf(", faults on (seed %d)", cli.FaultSeed)
	}
	fmt.Printf("chipmunk: %s (bugs %s), suite %s: %d workloads, cap=%d%s\n",
		sys.Name, opts.Bugs, *suite, len(suiteWs), opts.Cap, faultNote)

	ctx, stop := harness.SignalContext(context.Background())
	defer stop()

	inst.EmitRun(sys.Name, len(suiteWs))
	if addr := inst.Debug.Addr(); addr != "" {
		fmt.Printf("debug listener on http://%s (/debug/vars, /debug/pprof/, /progress)\n", addr)
	}

	runOpts := []harness.Option{harness.WithWorkers(cli.Jobs)}
	if *stopOne {
		runOpts = append(runOpts, harness.WithStopOnFirstBug())
	}
	lastBugs := 0
	runOpts = append(runOpts, harness.WithProgress(func(done, total int, c harness.Census) {
		inst.Progress(done, total, c)
		if cli.Verbose && c.Violations > lastBugs {
			lastBugs = c.Violations
			fmt.Printf("  BUG count now %d after %d/%d workloads\n", c.Violations, done, total)
		}
		if done%500 == 0 {
			fmt.Printf("  ... %d/%d workloads, %d crash states (%d deduped, %d truncated fences, %d quarantined)\n",
				done, total, c.StatesChecked, c.StatesDeduped, c.TruncatedFences,
				len(c.Quarantined)+c.SuppressedQuarantine)
		}
	}))

	census, viol, err := harness.Run(ctx, cfg, suiteWs, runOpts...)
	if err != nil && !errors.Is(err, context.Canceled) {
		fatalIf(err)
	}
	interrupted := errors.Is(err, context.Canceled)
	modeNote := fmt.Sprintf("j=%d, workers=%d", cli.Jobs, opts.Workers)
	finish(sys, census, viol, interrupted, false, modeNote, cli.Verbose, cli.OutDir, inst, cli.Journal, nil)
}

// runApp is the -app mode: check the application's crash contract on one
// file system (explicit -fs) or sweep all of them, then render the
// durability report. Exit status matches the suite convention: 1 when the
// contract was violated anywhere, 130 on interrupt.
func runApp(cli *harness.CLIOptions, opts harness.Options, suiteName string,
	suiteWs []workload.Workload, fsExplicit bool, inst *harness.Instrumentation) {
	var systems []harness.System
	if fsExplicit {
		sys, err := harness.SystemByName(cli.FS)
		fatalIf(err)
		systems = []harness.System{sys}
	} else {
		systems = harness.Systems()
	}
	fmt.Printf("chipmunk: app=%s (app-bugs %s), suite %s: %d workloads × %d file systems, cap=%d\n",
		cli.App, cli.AppBugs, suiteName, len(suiteWs), len(systems), opts.Cap)

	ctx, stop := harness.SignalContext(context.Background())
	defer stop()
	inst.EmitRun("app/"+cli.App, len(suiteWs)*len(systems))
	if addr := inst.Debug.Addr(); addr != "" {
		fmt.Printf("debug listener on http://%s (/debug/vars, /debug/pprof/, /progress)\n", addr)
	}

	var runs []report.DurabilityRun
	var all []core.Violation
	interrupted := false
	for _, sys := range systems {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		cfg := opts.ConfigFor(sys)
		census, viol, err := harness.Run(ctx, cfg, suiteWs,
			harness.WithWorkers(cli.Jobs),
			harness.WithProgress(func(done, total int, c harness.Census) {
				inst.Progress(done, total, c)
			}))
		if errors.Is(err, context.Canceled) {
			interrupted = true
		} else {
			fatalIf(err)
		}
		verdict := "ok"
		if len(viol) > 0 {
			verdict = fmt.Sprintf("%d CONTRACT VIOLATIONS", len(viol))
		}
		fmt.Printf("  %-12s %6d crash states in %8v  %s\n",
			sys.Name, census.StatesChecked, census.Elapsed.Round(time.Millisecond), verdict)
		if cli.Verbose {
			for _, v := range viol {
				fmt.Printf("%s\n", v.String())
			}
		}
		runs = append(runs, report.DurabilityRun{
			FS: sys.Name, Weak: sys.Weak,
			Workloads: census.Workloads, StatesChecked: census.StatesChecked,
			Elapsed: census.Elapsed, Violations: viol,
		})
		all = append(all, viol...)
	}

	if cli.DurabilityReport != "" && len(runs) > 0 {
		fatalIf(report.WriteDurability(cli.DurabilityReport, report.DurabilityReport{
			App: cli.App, AppBugs: cli.AppBugs, Suite: suiteName,
			Cap: opts.Cap, Journal: cli.Journal, Runs: runs,
		}))
		fmt.Printf("\nwrote durability report to %s\n", cli.DurabilityReport)
	}
	clusters := core.Triage(all)
	status := "done"
	if interrupted {
		status = "interrupted (partial sweep)"
	}
	fmt.Printf("%s: %d file systems, %d contract violations in %d clusters\n",
		status, len(runs), len(all), len(clusters))
	fatalIf(inst.Close())
	if len(all) > 0 {
		os.Exit(harness.ExitViolations)
	}
	if interrupted {
		os.Exit(harness.ExitInterrupted)
	}
}

// runWorker is the -worker mode: the engine spec comes from the
// coordinator, so only the local knobs (-j, watchdog, observability flags)
// apply. One handshake decides the mode — a fuzz spec routes to the fleet
// fuzzing worker, a suite spec to the campaign worker — so the worker
// command line is identical for both. A coordinator that was never
// reachable exits with the distinct ExitCoordinatorUnreachable code so
// fleet tooling can retry joining.
func runWorker(addr string, cli *harness.CLIOptions, jobs int, shardTimeout time.Duration, poisonShard int) {
	inst, err := cli.Instrument()
	fatalIf(err)
	ctx, stop := harness.SignalContext(context.Background())
	defer stop()
	logf := func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
	info, err := fleet.FetchSpec(ctx, addr, 0)
	switch {
	case err != nil:
	case info.Spec.Fuzz:
		err = fleet.RunWorker(ctx, fleet.WorkerConfig{
			Addr:         addr,
			RoundTimeout: shardTimeout,
			Journal:      inst.Journal,
			Logf:         logf,
			Info:         info,
		})
	default:
		wc := campaign.WorkerConfig{
			Addr:         addr,
			Jobs:         jobs,
			ShardTimeout: shardTimeout,
			Journal:      inst.Journal,
			Logf:         logf,
		}
		if poisonShard >= 0 {
			wc.PoisonShards = []int{poisonShard}
			fmt.Printf("CHAOS: this worker panics on shard %d (-poison-shard)\n", poisonShard)
		}
		err = campaign.RunWorker(ctx, wc)
	}
	stop()
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fmt.Fprintln(os.Stderr, "chipmunk:", err)
		inst.Close() //nolint:errcheck // already failing
		if errors.Is(err, campaign.ErrCoordinatorGone) {
			os.Exit(harness.ExitCoordinatorUnreachable)
		}
		os.Exit(harness.ExitFatal)
	}
	if inst.Journal != nil {
		fmt.Printf("journal: %d events written\n", inst.Journal.Events())
	}
	fatalIf(inst.Close())
	if interrupted {
		os.Exit(harness.ExitInterrupted)
	}
}

// coordinatorKnobs bundles the -serve flag surface.
type coordinatorKnobs struct {
	shardSize        int
	leaseTTL         time.Duration
	checkpoint       string
	shardRetries     int
	retryQuarantined bool
	wireFaultSeed    uint64
}

// runCoordinator is the -serve mode: shard the suite, lease shards to
// workers, fold the credited results, and report exactly like a local run.
// A campaign that completes with quarantined shards exits ExitDegraded.
func runCoordinator(addr string, cspec campaign.Spec, knobs coordinatorKnobs,
	sys harness.System, inst *harness.Instrumentation,
	cli *harness.CLIOptions, verbose bool, outDir string) {
	coord, err := campaign.NewCoordinator(campaign.CoordinatorConfig{
		Spec:             cspec,
		ShardSize:        knobs.shardSize,
		LeaseTTL:         knobs.leaseTTL,
		ShardRetries:     knobs.shardRetries,
		CheckpointPath:   knobs.checkpoint,
		RetryQuarantined: knobs.retryQuarantined,
		Journal:          inst.Journal,
		Progress: func(done, total int, c harness.Census) {
			inst.Progress(done, total, c)
			fmt.Printf("  ... %d/%d workloads (%d crash states, %d violations)\n",
				done, total, c.StatesChecked, c.Violations)
		},
		Logf: func(format string, args ...any) {
			if verbose {
				fmt.Printf(format+"\n", args...)
			}
		},
	})
	fatalIf(err)
	var handler http.Handler = coord
	var faultStats func() campaign.WireFaultStats
	if knobs.wireFaultSeed != 0 {
		handler, faultStats = campaign.WrapWireFaults(coord, campaign.DefaultWireFaults(knobs.wireFaultSeed))
		fmt.Printf("CHAOS: wire-fault injector armed (seed %d)\n", knobs.wireFaultSeed)
	}
	srv, err := campaign.ListenAndServe(addr, handler)
	fatalIf(err)
	info := coord.Info()
	fmt.Printf("chipmunk coordinator on %s: campaign %s, %s (bugs %s), suite %s: %d workloads in %d shards of %d, fingerprint %s, lease %v\n",
		srv.Addr(), info.CampaignID, sys.Name, cspec.Bugs, cspec.Suite,
		info.Workloads, info.Shards, info.ShardSize, info.SuiteHash, knobs.leaseTTL)
	fmt.Printf("watch the campaign at http://%s%s (JSON: %s, metrics: /debug/metrics)\n",
		srv.Addr(), campaign.PathDash, campaign.PathStatus)
	inst.EmitRun(sys.Name, info.Workloads)
	if daddr := inst.Debug.Addr(); daddr != "" {
		fmt.Printf("debug listener on http://%s (/progress aggregates across workers)\n", daddr)
	}

	// First SIGINT: stop issuing leases, drain in-flight shards to the
	// checkpoint, report the partial census. Second: force-exit 130.
	ctx, stop := harness.SignalContextNotify(context.Background(),
		"interrupt: draining — no new leases; crediting in-flight shards to the checkpoint (interrupt again to force exit)")
	defer stop()
	census, viol, err := coord.Wait(ctx)
	srv.Close() //nolint:errcheck // listener teardown on the way out
	stop()
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		coord.Close() //nolint:errcheck // already failing
		fatalIf(err)
	}
	fatalIf(coord.Close())
	finish(sys, census, viol, interrupted, coord.Degraded(), "distributed", verbose, outDir, inst, cli.Journal, func() {
		st := coord.Stats()
		fmt.Printf("%s\n", st)
		if faultStats != nil {
			fmt.Printf("%s\n", faultStats())
		}
		if outDir == "" {
			return
		}
		quarantined := make([]report.QuarantinedShard, 0)
		for _, q := range coord.Quarantined() {
			quarantined = append(quarantined, report.QuarantinedShard{
				Shard: q.Shard, Start: q.Start, End: q.End,
				Worker: q.Worker, Err: q.Err, Attempts: q.Attempts,
			})
		}
		wr, err := report.NewWriter(outDir)
		fatalIf(err)
		path, err := wr.WriteCampaignSummary(report.CampaignSummary{
			CampaignID: info.CampaignID, FS: sys.Name, Suite: cspec.Suite,
			SuiteHash: info.SuiteHash, Workloads: info.Workloads,
			Shards: info.Shards, ShardSize: info.ShardSize,
			Resumed: st.Resumed, Redispatched: st.Redispatched,
			Duplicates: st.Duplicates, Rejected: st.Rejected,
			BadPayloads: st.BadPayloads, Heartbeats: st.Heartbeats,
			PerWorker:   st.PerWorker,
			Quarantined: quarantined,
			Fingerprint: campaign.Fingerprint(census, viol),
		})
		fatalIf(err)
		fmt.Printf("wrote campaign summary to %s\n", path)
	})
}

// runFuzzCoordinator is the -serve -fuzz mode: coordinate a distributed
// coverage-guided fuzzing soak — round leases, generation-barrier corpus
// folds, minimization leases — and render the deduplicated bug census.
// Exit status follows the campaign convention: degraded 3 (rounds dropped,
// census incomplete), distinct bugs 1, interrupted 130.
func runFuzzCoordinator(addr string, fspec campaign.Spec, knobs coordinatorKnobs,
	sys harness.System, inst *harness.Instrumentation, cli *harness.CLIOptions) {
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Spec:           fspec,
		LeaseTTL:       knobs.leaseTTL,
		Retries:        knobs.shardRetries,
		CheckpointPath: knobs.checkpoint,
		Journal:        inst.Journal,
		Logf: func(format string, args ...any) {
			if cli.Verbose {
				fmt.Printf(format+"\n", args...)
			}
		},
	})
	fatalIf(err)
	var handler http.Handler = coord
	var faultStats func() campaign.WireFaultStats
	if knobs.wireFaultSeed != 0 {
		handler, faultStats = campaign.WrapWireFaults(coord, campaign.DefaultWireFaults(knobs.wireFaultSeed))
		fmt.Printf("CHAOS: wire-fault injector armed (seed %d)\n", knobs.wireFaultSeed)
	}
	srv, err := campaign.ListenAndServe(addr, handler)
	fatalIf(err)
	info := coord.Info()
	spec := info.Spec
	budgetNote := fmt.Sprintf("%d execs", spec.BudgetExecs)
	if spec.BudgetNanos > 0 {
		budgetNote = time.Duration(spec.BudgetNanos).String() + " wall-clock"
	}
	fmt.Printf("chipmunk fuzz coordinator on %s: soak %s, %s (bugs %s), budget %s in rounds of %d (gen width %d), seed %d, fingerprint %s, lease %v\n",
		srv.Addr(), info.CampaignID, sys.Name, spec.Bugs, budgetNote,
		spec.RoundExecs, spec.GenRounds, spec.FuzzSeed, info.SuiteHash, knobs.leaseTTL)
	fmt.Printf("watch the soak at http://%s%s (JSON: %s, metrics: /debug/metrics)\n",
		srv.Addr(), campaign.PathDash, campaign.PathStatus)
	inst.EmitRun(sys.Name, info.Workloads)

	// First SIGINT: stop issuing leases, drain in-flight units to the
	// checkpoint, report the partial census. Second: force-exit 130.
	ctx, stop := harness.SignalContextNotify(context.Background(),
		"interrupt: draining — no new leases; crediting in-flight rounds to the checkpoint (interrupt again to force exit)")
	defer stop()
	census, err := coord.Wait(ctx)
	srv.Close() //nolint:errcheck // listener teardown on the way out
	stop()
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		coord.Close() //nolint:errcheck // already failing
		fatalIf(err)
	}
	fatalIf(coord.Close())
	degraded := coord.Degraded()

	status := "done"
	if interrupted {
		status = "interrupted (partial census)"
	}
	fmt.Printf("\n%s: %d execs in %d rounds, %d crash states checked, corpus %d entries (%d coverage edges)\n",
		status, census.Execs, census.RoundsCredited, census.StatesChecked,
		census.CorpusSize, census.CoverageEdges)
	if census.QuarantinedChecks > 0 {
		fmt.Printf("sandbox: %d crash states quarantined\n", census.QuarantinedChecks)
	}
	st := coord.Stats()
	fmt.Printf("%s\n", st)
	if faultStats != nil {
		fmt.Printf("%s\n", faultStats())
	}
	fmt.Printf("distinct bugs: %d\n", len(census.Clusters))
	for i, b := range census.Clusters {
		note := ""
		if b.Minimized && b.Verified {
			note = ", minimized"
		}
		fmt.Printf("  bug %d: %s on %s — %d reports (prefix %s%s)\n",
			i+1, b.Kind, b.FS, b.Count, b.Prefix, note)
	}
	if cli.OutDir != "" {
		wr, err := report.NewWriter(cli.OutDir)
		fatalIf(err)
		path, err := wr.WriteFuzzCensus(census)
		fatalIf(err)
		fmt.Printf("wrote fuzzing census to %s\n", path)
	}
	if inst.Journal != nil {
		fmt.Printf("journal: %d events written to %s\n", inst.Journal.Events(), cli.Journal)
	}
	fatalIf(inst.Close())
	if degraded {
		os.Exit(harness.ExitDegraded)
	}
	if len(census.Clusters) > 0 {
		os.Exit(harness.ExitViolations)
	}
	if interrupted {
		os.Exit(harness.ExitInterrupted)
	}
}

// finish prints the census summary, triaged clusters, and optional
// reports, closes the instrumentation, and exits with the shared status
// convention (harness.Exit*): degraded campaigns exit 3 — ahead of
// violations, because an incomplete census is the more urgent fact — then
// violations 1, interrupted 130. extra, when non-nil, runs after the census
// block (campaign stats).
func finish(sys harness.System, census *harness.Census, viol []core.Violation,
	interrupted, degraded bool, modeNote string, verbose bool, outDir string,
	inst *harness.Instrumentation, journalPath string, extra func()) {
	clusters := core.Triage(viol)
	status := "done"
	if interrupted {
		status = "interrupted (partial census)"
	}
	fmt.Printf("\n%s: %d workloads, %d crash states (%d deduped, %d truncated fences), %v (%s)\n",
		status, census.Workloads, census.StatesChecked, census.StatesDeduped,
		census.TruncatedFences, census.Elapsed.Round(time.Millisecond), modeNote)
	if n := len(census.Quarantined) + census.SuppressedQuarantine; n > 0 || census.RetriedChecks > 0 {
		fmt.Printf("sandbox: %d states quarantined (%d suppressed past ledger cap), %d transient retries\n",
			n, census.SuppressedQuarantine, census.RetriedChecks)
		if verbose {
			for _, q := range census.Quarantined {
				fmt.Printf("  %s\n", q)
			}
		}
	}
	if extra != nil {
		extra()
	}
	fmt.Printf("reports: %d; triaged clusters: %d\n", len(viol), len(clusters))
	for i, c := range clusters {
		if verbose {
			fmt.Printf("\ncluster %d (%d reports):\n%s\n", i+1, c.Count, c.Representative)
		} else {
			fmt.Printf("cluster %d (%d reports): %s (%s)\n",
				i+1, c.Count, c.Representative.Kind, c.Representative.SysName)
		}
	}
	statsOut := inst.RenderStatsSnapshot(census.Obs, census.Elapsed)
	if statsOut == "" {
		statsOut = inst.RenderStats(census.Elapsed)
	}
	if statsOut != "" {
		fmt.Printf("\n%s", statsOut)
	}
	if inst.Journal != nil {
		fmt.Printf("journal: %d events written to %s\n", inst.Journal.Events(), journalPath)
	}
	writeReports(outDir, sys.Name, clusters, census)
	// os.Exit skips defers: flush the journal and stop the listener first.
	fatalIf(inst.Close())
	if degraded {
		os.Exit(harness.ExitDegraded)
	}
	if len(viol) > 0 {
		os.Exit(harness.ExitViolations)
	}
	if interrupted {
		os.Exit(harness.ExitInterrupted)
	}
}

// writeReports persists triaged clusters and the quarantine ledger when -o
// is given.
func writeReports(dir, fsName string, clusters []*core.Cluster, census *harness.Census) {
	if dir == "" || (len(clusters) == 0 && len(census.Quarantined) == 0) {
		return
	}
	wr, err := report.NewWriter(dir)
	fatalIf(err)
	if len(clusters) > 0 {
		paths, err := wr.WriteClusters(fsName, clusters)
		fatalIf(err)
		fmt.Printf("\nwrote %d report directories under %s\n", len(paths), dir)
	}
	qpath, err := wr.WriteQuarantine(fsName, census.Quarantined, census.SuppressedQuarantine)
	fatalIf(err)
	if qpath != "" {
		fmt.Printf("wrote quarantine ledger to %s\n", qpath)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "chipmunk:", err)
		os.Exit(harness.ExitFatal)
	}
}
