// Command chipmunk runs Chipmunk crash-consistency test suites against a
// PM file system, like the paper's ACE frontend (§3.4.1):
//
//	chipmunk -fs nova -suite seq1               # developer loop: < seconds
//	chipmunk -fs nova -bugs all -suite seq2     # as-published NOVA, all pairs
//	chipmunk -fs pmfs -bugs 13,16 -suite seq1   # selected injected bugs
//	chipmunk -fs ext4-dax -suite seq1dax        # weak system, fsync-gated
//	chipmunk -fs nova -suite seq2 -j 8          # suite sharded across workers
//	chipmunk -fs nova -suite seq1 -workers 4    # crash states checked in parallel
//
// The -bugs flag selects which of the paper's Table 1 bugs are injected:
// "none" (the fixed systems, default), "all" (as published), or a
// comma-separated ID list. -faults turns on pmem fault injection (torn
// stores, bit corruption, media errors) against the sandboxed checker.
// Ctrl-C cancels the run and prints the partial census; a second Ctrl-C
// force-exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"chipmunk/internal/ace"
	"chipmunk/internal/core"
	"chipmunk/internal/harness"
	"chipmunk/internal/pmem"
	"chipmunk/internal/report"
	"chipmunk/internal/workload"
)

func main() {
	var (
		spec    = harness.BindFlags(flag.CommandLine, "nova", "none", 0)
		ospec   = harness.BindObsFlags(flag.CommandLine)
		suite   = flag.String("suite", "seq1", "workload suite: seq1, seq2, seq3m, seq1dax, seq2dax")
		max     = flag.Int("max", 0, "stop after N workloads (0 = whole suite)")
		verbose = flag.Bool("v", false, "print every violation")
		stopOne = flag.Bool("stop-on-bug", false, "stop at the first violating workload")
		repro     = flag.String("repro", "", "run a single reproducer file (workload.Format syntax) instead of a suite")
		jobs      = flag.Int("j", 1, "suite-level workers (like the paper's VM sharding; 0 = all cores)")
		outDir    = flag.String("o", "", "write triaged bug reports and reproducers to this directory")
		faults    = flag.Bool("faults", false, "inject pmem faults (torn stores, bit flips, media errors) into crash states")
		faultSeed = flag.Uint64("fault-seed", 1, "deterministic seed for -faults")
	)
	flag.Parse()

	opts, err := spec.Options()
	fatalIf(err)
	if *faults {
		opts.Faults = pmem.DefaultFaults(*faultSeed)
	}
	inst, err := ospec.Instrument()
	fatalIf(err)
	defer inst.Close() //nolint:errcheck // re-checked explicitly below
	inst.Apply(&opts)
	sys, cfg, err := opts.Resolve()
	fatalIf(err)
	var suiteWs []workload.Workload
	if *repro != "" {
		data, err := os.ReadFile(*repro)
		fatalIf(err)
		w, err := workload.Parse(string(data))
		fatalIf(err)
		if w.Name == "" {
			w.Name = *repro
		}
		suiteWs = []workload.Workload{w}
		*suite = "repro"
	} else {
		suiteWs, err = pickSuite(*suite)
		fatalIf(err)
	}
	if *max > 0 && *max < len(suiteWs) {
		suiteWs = suiteWs[:*max]
	}

	faultNote := ""
	if *faults {
		faultNote = fmt.Sprintf(", faults on (seed %d)", *faultSeed)
	}
	fmt.Printf("chipmunk: %s (bugs %s), suite %s: %d workloads, cap=%d%s\n",
		sys.Name, opts.Bugs, *suite, len(suiteWs), opts.Cap, faultNote)

	ctx, stop := harness.SignalContext(context.Background())
	defer stop()

	inst.EmitRun(sys.Name, len(suiteWs))
	if addr := inst.Debug.Addr(); addr != "" {
		fmt.Printf("debug listener on http://%s (/debug/vars, /debug/pprof/, /progress)\n", addr)
	}

	runOpts := []harness.Option{harness.WithWorkers(*jobs)}
	if *stopOne {
		runOpts = append(runOpts, harness.WithStopOnFirstBug())
	}
	lastBugs := 0
	runOpts = append(runOpts, harness.WithProgress(func(done, total int, c harness.Census) {
		inst.Progress(done, total, c)
		if *verbose && c.Violations > lastBugs {
			lastBugs = c.Violations
			fmt.Printf("  BUG count now %d after %d/%d workloads\n", c.Violations, done, total)
		}
		if done%500 == 0 {
			fmt.Printf("  ... %d/%d workloads, %d crash states (%d deduped, %d truncated fences, %d quarantined)\n",
				done, total, c.StatesChecked, c.StatesDeduped, c.TruncatedFences,
				len(c.Quarantined)+c.SuppressedQuarantine)
		}
	}))

	census, viol, err := harness.Run(ctx, cfg, suiteWs, runOpts...)
	if err != nil && !errors.Is(err, context.Canceled) {
		fatalIf(err)
	}
	interrupted := errors.Is(err, context.Canceled)

	clusters := core.Triage(viol)
	status := "done"
	if interrupted {
		status = "interrupted (partial census)"
	}
	fmt.Printf("\n%s: %d workloads, %d crash states (%d deduped, %d truncated fences), %v (j=%d, workers=%d)\n",
		status, census.Workloads, census.StatesChecked, census.StatesDeduped,
		census.TruncatedFences, census.Elapsed.Round(time.Millisecond), *jobs, opts.Workers)
	if n := len(census.Quarantined) + census.SuppressedQuarantine; n > 0 || census.RetriedChecks > 0 {
		fmt.Printf("sandbox: %d states quarantined (%d suppressed past ledger cap), %d transient retries\n",
			n, census.SuppressedQuarantine, census.RetriedChecks)
		if *verbose {
			for _, q := range census.Quarantined {
				fmt.Printf("  %s\n", q)
			}
		}
	}
	fmt.Printf("reports: %d; triaged clusters: %d\n", len(viol), len(clusters))
	for i, c := range clusters {
		if *verbose {
			fmt.Printf("\ncluster %d (%d reports):\n%s\n", i+1, c.Count, c.Representative)
		} else {
			fmt.Printf("cluster %d (%d reports): %s (%s)\n",
				i+1, c.Count, c.Representative.Kind, c.Representative.SysName)
		}
	}
	if s := inst.RenderStats(census.Elapsed); s != "" {
		fmt.Printf("\n%s", s)
	}
	if inst.Journal != nil {
		fmt.Printf("journal: %d events written to %s\n", inst.Journal.Events(), *ospec.Journal)
	}
	writeReports(*outDir, sys.Name, clusters, census)
	// os.Exit skips defers: flush the journal and stop the listener first.
	fatalIf(inst.Close())
	if len(viol) > 0 {
		os.Exit(1)
	}
	if interrupted {
		os.Exit(130)
	}
}

// writeReports persists triaged clusters and the quarantine ledger when -o
// is given.
func writeReports(dir, fsName string, clusters []*core.Cluster, census *harness.Census) {
	if dir == "" || (len(clusters) == 0 && len(census.Quarantined) == 0) {
		return
	}
	wr, err := report.NewWriter(dir)
	fatalIf(err)
	if len(clusters) > 0 {
		paths, err := wr.WriteClusters(fsName, clusters)
		fatalIf(err)
		fmt.Printf("\nwrote %d report directories under %s\n", len(paths), dir)
	}
	qpath, err := wr.WriteQuarantine(fsName, census.Quarantined, census.SuppressedQuarantine)
	fatalIf(err)
	if qpath != "" {
		fmt.Printf("wrote quarantine ledger to %s\n", qpath)
	}
}

func pickSuite(name string) ([]workload.Workload, error) {
	switch name {
	case "seq1":
		return ace.Seq1(), nil
	case "seq2":
		return ace.Seq2(), nil
	case "seq3m":
		return ace.Seq3Metadata(), nil
	case "seq1dax":
		return ace.Seq1Dax(), nil
	case "seq2dax":
		return ace.Seq2Dax(), nil
	default:
		return nil, fmt.Errorf("unknown suite %q", name)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "chipmunk:", err)
		os.Exit(2)
	}
}
