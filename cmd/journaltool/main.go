// Command journaltool inspects run journals written by the -journal flag
// of chipmunk, chipmunkfuzz, and experiments:
//
//	journaltool run.jsonl                       # human-readable summary
//	journaltool -strict run.jsonl               # fail (exit 1) on corrupt lines
//	journaltool -canonical run.jsonl            # sorted canonical event keys
//	journaltool -merge -o merged.jsonl w1.jsonl w2.jsonl
//
// The reader is tolerant by design — a journal truncated by a crashed or
// killed run still summarizes, with a warning counting the skipped lines.
// -strict turns that warning into a failure, which is what CI uses to
// assert a run produced valid JSONL. -canonical emits each event's
// order-normalized identity (timestamps and durations cleared), one per
// line, sorted: diffing two runs' canonical dumps verifies the journal
// determinism contract (serial and parallel runs of one suite produce the
// same event multiset).
//
// -merge order-normalizes and concatenates several journals into one
// canonical stream (Event.CanonicalKey order, wall-clock fields cleared) —
// how the per-worker journals of a distributed campaign become one
// analyzable run record. The output is clean JSONL: it round-trips through
// journaltool itself, -strict included. A SIGKILLed worker's torn final
// line is skipped and counted like any other corrupt line.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"chipmunk/internal/obs"
	"chipmunk/internal/report"
)

func main() {
	var (
		strict    = flag.Bool("strict", false, "exit nonzero if any journal line is corrupt or truncated")
		canonical = flag.Bool("canonical", false, "dump sorted canonical event keys instead of a summary")
		merge     = flag.Bool("merge", false, "order-normalize and concatenate all input journals into one canonical JSONL stream")
		out       = flag.String("o", "", "(with -merge) write the merged stream here instead of stdout")
	)
	flag.Parse()
	if flag.NArg() < 1 || (!*merge && flag.NArg() != 1) {
		fmt.Fprintln(os.Stderr, "usage: journaltool [-strict] [-canonical] <journal.jsonl>")
		fmt.Fprintln(os.Stderr, "       journaltool -merge [-strict] [-o merged.jsonl] <journal.jsonl>...")
		os.Exit(2)
	}

	lists := make([][]obs.Event, 0, flag.NArg())
	skipped := 0
	for _, path := range flag.Args() {
		events, skip, err := obs.ReadJournalFile(path)
		fatalIf(err)
		if skip > 0 {
			fmt.Fprintf(os.Stderr, "journaltool: %d corrupt/truncated lines in %s\n", skip, path)
		}
		lists = append(lists, events)
		skipped += skip
	}

	switch {
	case *merge:
		merged := obs.CanonicalEvents(lists...)
		var w io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			fatalIf(err)
			bw := bufio.NewWriter(f)
			fatalIf(obs.WriteEvents(bw, merged))
			fatalIf(bw.Flush())
			fatalIf(f.Close())
			fmt.Fprintf(os.Stderr, "journaltool: merged %d events from %d journals into %s\n",
				len(merged), flag.NArg(), *out)
		} else {
			fatalIf(obs.WriteEvents(w, merged))
		}
	case *canonical:
		keys := make([]string, len(lists[0]))
		for i, e := range lists[0] {
			keys[i] = e.CanonicalKey()
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Println(k)
		}
	default:
		fatalIf(report.WriteJournalSummary(os.Stdout, lists[0], skipped))
	}
	if *strict && skipped > 0 {
		fmt.Fprintf(os.Stderr, "journaltool: %d corrupt/truncated lines total\n", skipped)
		os.Exit(1)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "journaltool:", err)
		os.Exit(2)
	}
}
