// Command journaltool inspects run journals written by the -journal flag
// of chipmunk, chipmunkfuzz, and experiments:
//
//	journaltool run.jsonl                  # human-readable summary
//	journaltool -strict run.jsonl          # fail (exit 1) on corrupt lines
//	journaltool -canonical run.jsonl       # sorted canonical event keys
//
// The reader is tolerant by design — a journal truncated by a crashed or
// killed run still summarizes, with a warning counting the skipped lines.
// -strict turns that warning into a failure, which is what CI uses to
// assert a run produced valid JSONL. -canonical emits each event's
// order-normalized identity (timestamps and durations cleared), one per
// line, sorted: diffing two runs' canonical dumps verifies the journal
// determinism contract (serial and parallel runs of one suite produce the
// same event multiset).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"chipmunk/internal/obs"
	"chipmunk/internal/report"
)

func main() {
	var (
		strict    = flag.Bool("strict", false, "exit nonzero if any journal line is corrupt or truncated")
		canonical = flag.Bool("canonical", false, "dump sorted canonical event keys instead of a summary")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: journaltool [-strict] [-canonical] <journal.jsonl>")
		os.Exit(2)
	}
	path := flag.Arg(0)

	events, skipped, err := obs.ReadJournalFile(path)
	fatalIf(err)
	if *canonical {
		keys := make([]string, len(events))
		for i, e := range events {
			keys[i] = e.CanonicalKey()
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Println(k)
		}
	} else {
		fatalIf(report.WriteJournalSummary(os.Stdout, events, skipped))
	}
	if *strict && skipped > 0 {
		fmt.Fprintf(os.Stderr, "journaltool: %d corrupt/truncated lines in %s\n", skipped, path)
		os.Exit(1)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "journaltool:", err)
		os.Exit(2)
	}
}
