// Command journaltool inspects run journals written by the -journal flag
// of chipmunk, chipmunkfuzz, and experiments:
//
//	journaltool run.jsonl                       # human-readable summary
//	journaltool -strict run.jsonl               # fail (exit 1) on corrupt lines
//	journaltool -canonical run.jsonl            # sorted canonical event keys
//	journaltool -merge -o merged.jsonl w1.jsonl w2.jsonl
//	journaltool -timeline w1.jsonl w2.jsonl     # per-trace span waterfalls
//	journaltool -triage merged.jsonl            # deduplicated violation census
//	journaltool -triage -o reports merged.jsonl # ... written as reports/TRIAGE.txt
//
// The reader is tolerant by design — a journal truncated by a crashed or
// killed run still summarizes, with a warning counting the skipped lines.
// -strict turns that warning into a failure, which is what CI uses to
// assert a run produced valid JSONL. -canonical emits each event's
// order-normalized identity (timestamps and durations cleared), one per
// line, sorted: diffing two runs' canonical dumps verifies the journal
// determinism contract (serial and parallel runs of one suite produce the
// same event multiset).
//
// -merge order-normalizes and concatenates several journals into one
// canonical stream (Event.CanonicalKey order, wall-clock fields cleared) —
// how the per-worker journals of a distributed campaign become one
// analyzable run record. The output is clean JSONL: it round-trips through
// journaltool itself, -strict included. A SIGKILLed worker's torn final
// line is skipped and counted like any other corrupt line.
//
// -timeline consumes RAW journals (before -merge: canonicalization clears
// the wall-clock fields a waterfall needs) and renders each trace's spans
// as an ASCII waterfall plus a per-stage breakdown of where the time went.
// -triage clusters violation events by (violation kind, file system,
// canonical trace prefix) into a deduplicated census — deterministic for a
// given event multiset, so two merge orders produce identical output.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"chipmunk/internal/obs"
	"chipmunk/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("journaltool", flag.ContinueOnError)
	fl.SetOutput(stderr)
	var (
		strict    = fl.Bool("strict", false, "exit nonzero if any journal line is corrupt or truncated")
		canonical = fl.Bool("canonical", false, "dump sorted canonical event keys instead of a summary")
		merge     = fl.Bool("merge", false, "order-normalize and concatenate all input journals into one canonical JSONL stream")
		timeline  = fl.Bool("timeline", false, "render per-trace span waterfalls and a stage breakdown (raw journals)")
		triage    = fl.Bool("triage", false, "cluster violations by (kind, fs, trace prefix) into a deduplicated census")
		out       = fl.String("o", "", "with -merge: write the merged stream here; with -triage: write TRIAGE.txt under this directory")
	)
	if err := fl.Parse(args); err != nil {
		return 2
	}
	multi := *merge || *timeline || *triage
	if fl.NArg() < 1 || (!multi && fl.NArg() != 1) {
		fmt.Fprintln(stderr, "usage: journaltool [-strict] [-canonical] <journal.jsonl>")
		fmt.Fprintln(stderr, "       journaltool -merge [-strict] [-o merged.jsonl] <journal.jsonl>...")
		fmt.Fprintln(stderr, "       journaltool -timeline <journal.jsonl>...")
		fmt.Fprintln(stderr, "       journaltool -triage [-o reportdir] <journal.jsonl>...")
		return 2
	}

	lists := make([][]obs.Event, 0, fl.NArg())
	skipped := 0
	for _, path := range fl.Args() {
		events, skip, err := obs.ReadJournalFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "journaltool:", err)
			return 2
		}
		if skip > 0 {
			fmt.Fprintf(stderr, "journaltool: %d corrupt/truncated lines in %s\n", skip, path)
		}
		lists = append(lists, events)
		skipped += skip
	}
	flat := lists[0]
	if len(lists) > 1 {
		flat = nil
		for _, l := range lists {
			flat = append(flat, l...)
		}
	}

	switch {
	case *merge:
		merged := obs.CanonicalEvents(lists...)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(stderr, "journaltool:", err)
				return 2
			}
			bw := bufio.NewWriter(f)
			err = obs.WriteEvents(bw, merged)
			if err == nil {
				err = bw.Flush()
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(stderr, "journaltool:", err)
				return 2
			}
			fmt.Fprintf(stderr, "journaltool: merged %d events from %d journals into %s\n",
				len(merged), fl.NArg(), *out)
		} else if err := obs.WriteEvents(stdout, merged); err != nil {
			fmt.Fprintln(stderr, "journaltool:", err)
			return 2
		}
	case *timeline:
		if _, err := report.WriteTimeline(stdout, flat); err != nil {
			fmt.Fprintln(stderr, "journaltool:", err)
			return 2
		}
	case *triage:
		clusters := report.TriageEvents(flat)
		if *out != "" {
			w, err := report.NewWriter(*out)
			if err != nil {
				fmt.Fprintln(stderr, "journaltool:", err)
				return 2
			}
			path, err := w.WriteTriage(flat)
			if err != nil {
				fmt.Fprintln(stderr, "journaltool:", err)
				return 2
			}
			fmt.Fprintf(stderr, "journaltool: triaged %d clusters into %s\n", len(clusters), path)
		}
		if err := report.WriteTriageCensus(stdout, clusters); err != nil {
			fmt.Fprintln(stderr, "journaltool:", err)
			return 2
		}
	case *canonical:
		keys := make([]string, len(lists[0]))
		for i, e := range lists[0] {
			keys[i] = e.CanonicalKey()
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintln(stdout, k)
		}
	default:
		if err := report.WriteJournalSummary(stdout, lists[0], skipped); err != nil {
			fmt.Fprintln(stderr, "journaltool:", err)
			return 2
		}
	}
	if *strict && skipped > 0 {
		fmt.Fprintf(stderr, "journaltool: %d corrupt/truncated lines total\n", skipped)
		return 1
	}
	return 0
}
