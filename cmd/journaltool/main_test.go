package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chipmunk/internal/obs"
)

func writeJournal(t *testing.T, path string, events []obs.Event, tail string) {
	t.Helper()
	var b strings.Builder
	for _, e := range events {
		line, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteString(tail)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStrictSurfacesSkipped: the tolerant reader's skipped-line count is
// printed per file and fails the run under -strict — the contract CI's
// journal validation step relies on.
func TestStrictSurfacesSkipped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	writeJournal(t, path, []obs.Event{
		{Type: "run", FS: "nova", Sys: -1},
		{Type: "workload", FS: "nova", Workload: "wl", Sys: -1},
	}, `{"type":"workload","fs":"nova","torn...`+"\n")

	var out, errb strings.Builder
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("tolerant mode exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "1 corrupt/truncated lines in") {
		t.Fatalf("skip count not surfaced: %s", errb.String())
	}
	if !strings.Contains(out.String(), "WARNING: 1 corrupt/truncated lines skipped") {
		t.Fatalf("summary missing warning: %s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-strict", path}, &out, &errb); code != 1 {
		t.Fatalf("-strict exit %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "1 corrupt/truncated lines total") {
		t.Fatalf("-strict total not surfaced: %s", errb.String())
	}
}

// TestTimelineAndTriageModes: -timeline renders waterfalls from several raw
// journals at once, and -triage produces an order-independent census plus
// TRIAGE.txt under -o.
func TestTimelineAndTriageModes(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	w1 := filepath.Join(dir, "w1.jsonl")
	w2 := filepath.Join(dir, "w2.jsonl")
	writeJournal(t, w1, []obs.Event{
		{Type: "span", Name: "workload", Trace: "aaaa", Span: "r1", Workload: "wl1",
			Sys: -1, Time: t0, DurNanos: int64(5 * time.Millisecond)},
		{Type: "violation", FS: "nova", Workload: "wl1", Kind: "content-mismatch",
			Prefix: "creat(f1)", Sys: 0, Detail: "d1"},
	}, "")
	writeJournal(t, w2, []obs.Event{
		{Type: "span", Name: "workload", Trace: "bbbb", Span: "r2", Workload: "wl2",
			Sys: -1, Time: t0.Add(time.Second), DurNanos: int64(5 * time.Millisecond)},
		{Type: "violation", FS: "nova", Workload: "wl2", Kind: "content-mismatch",
			Prefix: "creat(f1)", Sys: 0, Detail: "d1"},
	}, "")

	var out, errb strings.Builder
	if code := run([]string{"-timeline", w1, w2}, &out, &errb); code != 0 {
		t.Fatalf("-timeline exit %d: %s", code, errb.String())
	}
	for _, want := range []string{"2 spans in 2 traces", "trace aaaa", "trace bbbb", "stage breakdown"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("timeline missing %q:\n%s", want, out.String())
		}
	}

	repDir := filepath.Join(dir, "reports")
	var tri1, tri2 strings.Builder
	if code := run([]string{"-triage", "-o", repDir, w1, w2}, &tri1, &errb); code != 0 {
		t.Fatalf("-triage exit %d: %s", code, errb.String())
	}
	if code := run([]string{"-triage", w2, w1}, &tri2, &errb); code != 0 {
		t.Fatalf("-triage exit %d: %s", code, errb.String())
	}
	if tri1.String() != tri2.String() {
		t.Fatalf("triage census depends on journal order:\n--- w1,w2 ---\n%s--- w2,w1 ---\n%s",
			tri1.String(), tri2.String())
	}
	if !strings.Contains(tri1.String(), "2 violations in 1 clusters") {
		t.Fatalf("census wrong:\n%s", tri1.String())
	}
	data, err := os.ReadFile(filepath.Join(repDir, "TRIAGE.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != tri1.String() {
		t.Fatalf("TRIAGE.txt diverges from stdout census:\n%s", data)
	}
}
