// Command chipmunkfuzz is the gray-box fuzzing frontend, the counterpart of
// the paper's modified Syzkaller (§3.4.2):
//
//	chipmunkfuzz -fs splitfs -bugs all -execs 2000
//
// It mutates workloads under trace-shape coverage feedback, runs each
// through the Chipmunk engine with the paper's cap of two replayed writes
// per crash state, and prints the triaged bug-report clusters. Ctrl-C stops
// the campaign early and reports what was found so far; a second Ctrl-C
// force-exits. With -corpus, workloads whose checks panic or get
// quarantined are saved there as panic-*/sandbox-* reproducers.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"chipmunk/internal/fuzz"
	"chipmunk/internal/harness"
	"chipmunk/internal/obs"
	"chipmunk/internal/report"
	"chipmunk/internal/workload"
)

func main() {
	var (
		cli      = harness.BindCLI(flag.CommandLine, harness.CLIDefaults{FS: "nova", Bugs: "all", Cap: 2})
		execs    = flag.Int("execs", 500, "number of fuzzer executions")
		seed     = flag.Int64("seed", 1, "fuzzer RNG seed")
		minimize = flag.Bool("minimize", true, "minimize each cluster's reproducer workload")
		corpus   = flag.String("corpus", "", "load seeds from / save the corpus to this directory")
	)
	flag.Parse()
	outDir := &cli.OutDir

	opts, err := cli.Options()
	fatalIf(err)
	inst, err := cli.Instrument()
	fatalIf(err)
	defer inst.Close() //nolint:errcheck // re-checked explicitly below
	inst.Apply(&opts)
	sys, cfg, err := opts.Resolve()
	fatalIf(err)

	var seeds []workload.Workload
	if *corpus != "" {
		if loaded, skipped, err := fuzz.LoadCorpus(*corpus); err == nil {
			seeds = loaded
			if len(skipped) > 0 {
				fmt.Printf("corpus: skipped %d unparseable files\n", len(skipped))
			}
			fmt.Printf("corpus: loaded %d seeds from %s\n", len(seeds), *corpus)
		}
	}
	fz := fuzz.New(cfg, *seed, seeds)
	fz.CrashDir = *corpus
	fz.KV = cli.App == "kv"
	appNote := ""
	if fz.KV {
		appNote = ", app=kv"
	}
	fmt.Printf("chipmunkfuzz: %s (bugs %s), %d execs, cap=%d, seed=%d%s\n",
		sys.Name, opts.Bugs, *execs, opts.Cap, *seed, appNote)

	ctx, stop := harness.SignalContext(context.Background())
	defer stop()

	inst.EmitRun(sys.Name, *execs)
	if addr := inst.Debug.Addr(); addr != "" {
		fmt.Printf("debug listener on http://%s (/debug/vars, /debug/pprof/, /progress)\n", addr)
	}

	start := time.Now()
	ran := 0
	interrupted := false
	for i := 0; i < *execs; i++ {
		if ctx.Err() != nil {
			interrupted = true
			fmt.Printf("\ninterrupted after %d execs\n", ran)
			break
		}
		_, _, err := fz.Step()
		fatalIf(err)
		ran++
		inst.Debug.SetProgress(obs.ProgressInfo{
			Done: ran, Total: *execs,
			StatesChecked: fz.StatesChecked, Violations: len(fz.Violations),
		})
		if ran%100 == 0 {
			fmt.Printf("  %5d execs | corpus %4d | coverage %5d | states %8d | clusters %d\n",
				ran, fz.CorpusSize(), fz.CoverageSize(), fz.StatesChecked, len(fz.Clusters))
		}
	}
	fmt.Printf("\ndone in %v: %d crash states checked, %d reports in %d clusters\n",
		time.Since(start).Round(time.Millisecond), fz.StatesChecked, len(fz.Violations), len(fz.Clusters))
	if fz.Quarantined > 0 || fz.RetriedChecks > 0 {
		fmt.Printf("sandbox: %d crash states quarantined, %d transient retries\n",
			fz.Quarantined, fz.RetriedChecks)
	}
	for i, c := range fz.Clusters {
		fmt.Printf("\ncluster %d (%d reports):\n%s\n", i+1, c.Count, c.Representative)
		if *minimize {
			min, execs, err := fuzz.Minimize(cfg, c.Representative.Workload, 60)
			if err == nil && len(min.Ops) < len(c.Representative.Workload.Ops) {
				fmt.Printf("\nminimized reproducer (%d execs):\n%s", execs, workload.Format(min))
			}
		}
	}
	if *corpus != "" {
		if err := fz.SaveCorpus(*corpus); err != nil {
			fmt.Fprintln(os.Stderr, "corpus save:", err)
		} else {
			fmt.Printf("corpus: saved %d workloads to %s\n", fz.CorpusSize(), *corpus)
		}
	}
	if *outDir != "" && len(fz.Clusters) > 0 {
		wr, err := report.NewWriter(*outDir)
		fatalIf(err)
		paths, err := wr.WriteClusters(sys.Name, fz.Clusters)
		fatalIf(err)
		fmt.Printf("\nwrote %d report directories under %s\n", len(paths), *outDir)
	}
	if s := inst.RenderStats(time.Since(start)); s != "" {
		fmt.Printf("\n%s", s)
	}
	if inst.Journal != nil {
		fmt.Printf("journal: %d events written to %s\n", inst.Journal.Events(), cli.Journal)
	}
	// os.Exit skips defers: flush the journal and stop the listener first.
	// Status follows the shared harness convention (violations 1, fatal 2,
	// interrupt 130) so fuzzing pipelines read the same codes as suite runs.
	fatalIf(inst.Close())
	if len(fz.Violations) > 0 {
		os.Exit(harness.ExitViolations)
	}
	if interrupted {
		os.Exit(harness.ExitInterrupted)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "chipmunkfuzz:", err)
		os.Exit(harness.ExitFatal)
	}
}
