// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index):
//
//	experiments table1            # Table 1: the 23-bug detection matrix
//	experiments table2            # Table 2: observations, measured
//	experiments fig3              # Figure 3: ACE vs fuzzer discovery curves
//	experiments counts            # §3.4.1 workload counts
//	experiments inflight          # §3.2 in-flight write census
//	experiments coalesce          # §3.2 write-coalescing state explosion
//	experiments perf              # §5.1 Obs 2: rename/link fix overheads
//	experiments all               # everything
//
// Shared flags: -cap bounds replayed subset sizes for the detection runs
// (0 = exhaustive) and -workers sets the engine's in-workload crash-state
// worker count (<= 1 = serial).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"chipmunk/internal/ace"
	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/fs/nova"
	"chipmunk/internal/harness"
	"chipmunk/internal/persist"
	"chipmunk/internal/pmem"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

var (
	cli = harness.BindCLI(flag.CommandLine, harness.CLIDefaults{})

	// inst carries the -stats/-journal/-debug-addr plumbing shared by every
	// experiment's engine runs; resolved once in main, nil-safe throughout.
	inst *harness.Instrumentation
)

func main() {
	flag.Parse()
	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	var err error
	inst, err = cli.Instrument()
	fatalIfErr(err)
	inst.EmitRun("experiments/"+what, 0)
	start := time.Now()
	// First Ctrl-C stops between experiments; a second force-exits (130).
	ctx, stop := harness.SignalContext(context.Background())
	defer stop()
	run := map[string]func() error{
		"table1":   table1,
		"table2":   table2,
		"fig3":     fig3,
		"counts":   counts,
		"inflight": inflight,
		"coalesce": coalesce,
		"perf":     perf,
	}
	if what == "all" {
		for _, name := range []string{"counts", "table1", "table2", "inflight", "coalesce", "perf", "fig3"} {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "experiments: interrupted")
				os.Exit(130)
			}
			if err := run[name](); err != nil {
				fatal(err)
			}
		}
		finish(start)
		return
	}
	fn, ok := run[what]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q", what))
	}
	if err := fn(); err != nil {
		fatal(err)
	}
	finish(start)
}

// finish prints the -stats breakdown (when requested) and flushes the
// instrumentation before exit.
func finish(start time.Time) {
	if s := inst.RenderStats(time.Since(start)); s != "" {
		fmt.Printf("\n%s", s)
	}
	fatalIfErr(inst.Close())
}

// detectOpts builds the DetectOptions every detection-based experiment
// shares, with the instrumentation wired in.
func detectOpts(cap int) harness.DetectOptions {
	return harness.DetectOptions{Cap: cap, Workers: cli.Workers, Obs: inst.Col, Journal: inst.Journal}
}

func fatalIfErr(err error) {
	if err != nil {
		fatal(err)
	}
}

func header(s string) {
	fmt.Printf("\n================ %s ================\n\n", s)
}

func table1() error {
	header("Table 1 — bugs found by Chipmunk (targeted workloads, exhaustive replay)")
	rows, err := harness.RunTable1(detectOpts(cli.Cap))
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderTable1(rows))
	found := 0
	for _, r := range rows {
		if r.Detection.Found {
			found++
		}
	}
	fmt.Printf("\n%d of %d unique bugs detected (paper: 23/23)\n", found, len(rows))
	return nil
}

func table2() error {
	header("Table 2 — observations and associated bugs (measured)")
	t2, err := harness.RunTable2()
	if err != nil {
		return err
	}
	fmt.Print(t2.Render())
	return nil
}

func fig3() error {
	header("Figure 3 — cumulative time to find bugs: ACE vs fuzzer")
	fmt.Println("running per-bug ACE scans (bounded at 600 workloads/bug)...")
	acePts, err := harness.Fig3ACE(600, detectOpts(2))
	if err != nil {
		return err
	}
	fmt.Println("running per-bug fuzzer campaigns (bounded at 1500 execs/bug)...")
	fuzzPts, err := harness.Fig3Fuzz(42, 1500)
	if err != nil {
		return err
	}
	aceFound, fuzzFound := 0, 0
	for _, p := range acePts {
		if p.Found {
			aceFound++
		}
	}
	for _, p := range fuzzPts {
		if p.Found {
			fuzzFound++
		}
	}
	fmt.Printf("\nACE found %d/23 bugs (paper: 19); fuzzer found %d/23 (paper: 23)\n\n",
		aceFound, fuzzFound)
	fmt.Print(harness.RenderFig3(harness.Curve(acePts), harness.Curve(fuzzPts)))

	fmt.Println("\nper-bug detail (workloads/execs to first detection):")
	sort.Slice(acePts, func(i, j int) bool { return acePts[i].Bug < acePts[j].Bug })
	for i, p := range acePts {
		fz := fuzzPts[i]
		aceCol := "not found (fuzzer-only)"
		if p.Found {
			aceCol = fmt.Sprintf("%4d workloads, %8v", p.Workloads, p.Elapsed.Round(time.Millisecond))
		}
		fzCol := "not found in budget"
		if fz.Found {
			fzCol = fmt.Sprintf("%4d execs, %8v", fz.Workloads, fz.Elapsed.Round(time.Millisecond))
		}
		fmt.Printf("  bug %-3d ACE: %-34s fuzzer: %s\n", p.Bug, aceCol, fzCol)
	}
	return nil
}

func counts() error {
	header("§3.4.1 — ACE workload counts")
	fmt.Printf("seq-1 (PM mode):          %6d   (paper: 56)\n", len(ace.Seq1()))
	fmt.Printf("seq-2 (PM mode):          %6d   (paper: 3136)\n", len(ace.Seq2()))
	fmt.Printf("seq-3 metadata:           %6d   (paper: 50650; ours uses a %d-variant metadata space)\n",
		len(ace.Seq3Metadata()), ace.MetadataVariantCount())
	fmt.Printf("seq-1 (DAX mode):         %6d   (paper: 419; ours appends fsync/sync variants)\n", len(ace.Seq1Dax()))
	return nil
}

func inflight() error {
	header("§3.2 — in-flight writes during metadata operations")
	census, err := harness.InFlightCensus()
	if err != nil {
		return err
	}
	names := make([]string, 0, len(census))
	for n := range census {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%-12s %-10s %-12s %-12s %-10s\n", "system", "workloads", "fences", "avg-inflight", "max")
	for _, n := range names {
		c := census[n]
		fmt.Printf("%-12s %-10d %-12d %-12.2f %-10d\n", n, c.Workloads, c.Fences, c.AvgInFlight, c.MaxInFlight)
	}
	fmt.Println("\npaper: average 3, maximum 10 across the tested systems")
	return nil
}

func coalesce() error {
	header("§3.2 — function-level coalescing vs per-store tracing (1 KiB write)")
	w := workload.Workload{Name: "coalesce", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Off: 0, Size: 1024, Seed: 1},
	}}
	sys, _ := harness.SystemByName("nova")
	cfg := harness.Options{Bugs: bugs.None(), Obs: inst.Col, Journal: inst.Journal}.ConfigFor(sys)
	cfg.TraceStores = true
	res, err := core.RunContext(context.Background(), cfg, w)
	if err != nil {
		return err
	}
	fmt.Printf("durable-intent writes at the busiest fence (function-level units): %d\n", res.MaxInFlight)
	fmt.Printf("plain-store events an instruction-level tracer also records:      %d\n", res.StoreEntries)
	fmt.Printf("crash states Chipmunk checked for the whole workload:             %d\n", res.StatesChecked)
	fmt.Println("\npaper: a 1 KiB write is 128 8-byte stores -> 2^128 states without")
	fmt.Println("coalescing; function-level interception sees it as ONE logical write.")
	return nil
}

func perf() error {
	header("§5.1 Obs 2 — cost of fixing the in-place-update bugs (simulated PM time)")
	renameBuggy := renameLoopCost(bugs.Of(bugs.NovaRenameInPlaceDelete, bugs.NovaRenameOldSurvives))
	renameFixed := renameLoopCost(bugs.None())
	fmt.Printf("rename loop, published NOVA (in-place delete): %8d simulated ns/op\n", renameBuggy)
	fmt.Printf("rename loop, fixed NOVA (journalled delete):   %8d simulated ns/op\n", renameFixed)
	fmt.Printf("fix overhead: %+.1f%%   (paper: fixed version 25%% slower on a rename microbenchmark)\n",
		100*float64(renameFixed-renameBuggy)/float64(renameBuggy))

	linkBuggy := linkLoopCost(bugs.Of(bugs.NovaLinkCountEarly))
	linkFixed := linkLoopCost(bugs.None())
	fmt.Printf("\nlink loop, published NOVA (in-place nlink):    %8d simulated ns/op\n", linkBuggy)
	fmt.Printf("link loop, fixed NOVA (journalled):            %8d simulated ns/op\n", linkFixed)
	fmt.Printf("fix overhead: %+.1f%%   (paper: fixed version 7%% FASTER — the in-place check cost a media read)\n",
		100*float64(linkFixed-linkBuggy)/float64(linkBuggy))
	return nil
}

func renameLoopCost(set bugs.Set) int64 {
	dev := pmem.NewDevice(4 << 20)
	f := nova.New(persist.New(dev), set)
	must(f.Mkfs())
	fd, _ := f.Create("/target")
	f.Pwrite(fd, []byte("content"), 0)
	f.Close(fd)
	const iters = 200
	dev.ResetStats()
	for i := 0; i < iters; i++ {
		fd, _ := f.Create("/tmp")
		f.Pwrite(fd, []byte("new content"), 0)
		f.Close(fd)
		must(f.Rename("/tmp", "/target"))
	}
	dev.Stats().Feed(inst.Col)
	return dev.Stats().SimNanos / iters
}

func linkLoopCost(set bugs.Set) int64 {
	dev := pmem.NewDevice(4 << 20)
	f := nova.New(persist.New(dev), set)
	must(f.Mkfs())
	fd, _ := f.Create("/target")
	f.Pwrite(fd, []byte("linked file content"), 0)
	f.Close(fd)
	const iters = 200
	dev.ResetStats()
	for i := 0; i < iters; i++ {
		must(f.Link("/target", "/l"))
		must(f.Unlink("/l"))
	}
	dev.Stats().Feed(inst.Col)
	return dev.Stats().SimNanos / iters
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

var _ vfs.FS = (*nova.FS)(nil)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
