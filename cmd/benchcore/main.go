// Command benchcore measures the engine's crash-image materialization cost
// and writes the numbers the perf acceptance gates read, as JSON:
//
//	benchcore -o BENCH_core.json            # full matrix, best-of-3
//	benchcore -rounds 1                     # CI smoke, print to stdout
//	benchcore -check BENCH_core.json        # perf gate against a baseline
//
// The -check mode re-runs the matrix and compares the delta-path rows
// against the committed baseline. Raw ns/state is machine-dependent, so the
// gate first computes a calibration factor — the median ratio of current to
// baseline ns/state over the full-copy rows, whose cost is dominated by
// memcpy and tracks machine speed — and fails if the geometric mean of the
// delta rows' ns/state exceeds the calibrated baseline geomean by more than
// -tolerance. Individual cells run for only a few milliseconds and jitter
// past any sane tolerance, so the gate judges the aggregate; per-cell
// ratios are printed for diagnosis. The per-state byte counters are
// deterministic, so those ARE compared per cell, without calibration.
//
// The matrix crosses {delta, full-copy} x {workers 1, 4} x {device 1x, 2x}
// on the exhaustive data-heavy workload BenchmarkEngineParallel uses. Each
// row carries ns/state, states/sec, and the per-state byte traffic taken
// from the obs materialization counters — under the delta path the bytes
// must track the workload's diff, not the device size.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/harness"
	"chipmunk/internal/obs"
	"chipmunk/internal/workload"
)

// Row is one cell of the measurement matrix.
type Row struct {
	Mode             string  `json:"mode"` // "delta" or "full-copy"
	Workers          int     `json:"workers"`
	DevSize          int64   `json:"dev_size"`
	States           int64   `json:"states"`
	NsPerState       float64 `json:"ns_per_state"`
	StatesPerSec     float64 `json:"states_per_sec"`
	MatBytesPerState float64 `json:"mat_bytes_per_state"`
	PrimeBytes       int64   `json:"prime_bytes"`
	RolledBackBytes  int64   `json:"rolled_back_bytes"`
	ImagePrimes      int64   `json:"image_primes"`
}

// Report is the BENCH_core.json document.
type Report struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	Rounds int    `json:"rounds"`
	FS     string `json:"fs"`
	Rows   []Row  `json:"rows"`
}

func main() {
	var (
		out       = flag.String("o", "", "write the JSON report here (default stdout)")
		rounds    = flag.Int("rounds", 3, "runs per cell; the fastest is reported")
		fsName    = flag.String("fs", "nova", "target file system")
		check     = flag.String("check", "", "baseline BENCH_core.json to gate against; exit 1 on regression")
		tolerance = flag.Float64("tolerance", 0.15, "allowed fractional regression in -check mode")
	)
	flag.Parse()

	sys, err := harness.SystemByName(*fsName)
	fatalIf(err)
	w := workload.Workload{Name: "benchcore", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Off: 0, Size: 16384, Seed: 1},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
	}}

	rep := Report{Schema: "bench_core/v1", Go: runtime.Version(), Rounds: *rounds, FS: sys.Name}
	for _, fullCopy := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			for _, devSize := range []int64{core.DefaultDevSize, 2 * core.DefaultDevSize} {
				rep.Rows = append(rep.Rows, measure(sys, w, fullCopy, workers, devSize, *rounds))
			}
		}
	}

	if *check != "" {
		fatalIf(gate(*check, rep, *tolerance))
		fmt.Printf("perf gate passed against %s (tolerance %.0f%%)\n", *check, *tolerance*100)
		return
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	fatalIf(err)
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	fatalIf(os.WriteFile(*out, enc, 0o644))
	fmt.Printf("wrote %s (%d rows)\n", *out, len(rep.Rows))
}

// rowKey identifies a matrix cell across reports.
func rowKey(r Row) string { return fmt.Sprintf("%s/w%d/dev%d", r.Mode, r.Workers, r.DevSize) }

// gate compares the freshly measured report against a committed baseline
// and returns an error naming every regressed cell. Machine-speed skew is
// absorbed by calibrating with the median current/baseline ns ratio over
// the full-copy rows before judging the delta rows.
func gate(path string, cur Report, tol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if base.Schema != cur.Schema {
		return fmt.Errorf("baseline schema %q, want %q", base.Schema, cur.Schema)
	}
	byKey := make(map[string]Row, len(base.Rows))
	for _, r := range base.Rows {
		byKey[rowKey(r)] = r
	}

	var ratios []float64
	for _, r := range cur.Rows {
		b, ok := byKey[rowKey(r)]
		if r.Mode != "full-copy" || !ok || b.NsPerState <= 0 {
			continue
		}
		ratios = append(ratios, r.NsPerState/b.NsPerState)
	}
	if len(ratios) == 0 {
		return fmt.Errorf("baseline %s has no full-copy rows to calibrate against", path)
	}
	sort.Float64s(ratios)
	factor := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		factor = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	fmt.Printf("machine calibration factor %.3f (median of %d full-copy ratios)\n", factor, len(ratios))

	var failures []string
	var logSum float64
	var deltaRows int
	for _, r := range cur.Rows {
		b, ok := byKey[rowKey(r)]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from baseline", rowKey(r)))
			continue
		}
		if r.Mode == "delta" && b.NsPerState > 0 {
			ratio := r.NsPerState / (b.NsPerState * factor)
			logSum += math.Log(ratio)
			deltaRows++
			fmt.Printf("  %-24s %8.0f ns/state, calibrated baseline %8.0f (x%.2f)\n",
				rowKey(r), r.NsPerState, b.NsPerState*factor, ratio)
		}
		// The materialization byte counters are deterministic functions of
		// the workload, so compare them raw: growth here means the delta
		// path started copying more than the diff.
		if b.MatBytesPerState > 0 && r.MatBytesPerState > b.MatBytesPerState*(1+tol) {
			failures = append(failures, fmt.Sprintf("%s: %.0f materialized bytes/state > baseline %.0f (deterministic counter)",
				rowKey(r), r.MatBytesPerState, b.MatBytesPerState))
		}
	}
	if deltaRows == 0 {
		return fmt.Errorf("baseline %s has no delta rows to gate on", path)
	}
	geomean := math.Exp(logSum / float64(deltaRows))
	fmt.Printf("delta-path geomean x%.3f of calibrated baseline (tolerance x%.2f)\n", geomean, 1+tol)
	if geomean > 1+tol {
		failures = append(failures, fmt.Sprintf(
			"delta-path ns/state geomean is x%.3f of the calibrated baseline, over the x%.2f tolerance", geomean, 1+tol))
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func measure(sys harness.System, w workload.Workload, fullCopy bool, workers int, devSize int64, rounds int) Row {
	best := Row{Mode: "delta", Workers: workers, DevSize: devSize}
	if fullCopy {
		best.Mode = "full-copy"
	}
	for r := 0; r < rounds; r++ {
		col := obs.New()
		cfg := harness.Options{
			Bugs: bugs.None(), Cap: 0, Workers: workers,
			DisableDeltaMaterialize: fullCopy, Obs: col,
		}.ConfigFor(sys)
		cfg.DevSize = devSize
		start := time.Now()
		res, err := core.RunContext(context.Background(), cfg, w)
		elapsed := time.Since(start)
		fatalIf(err)
		if res.Buggy() {
			fatalIf(fmt.Errorf("benchcore workload violated on a fixed system"))
		}
		snap := col.Snapshot()
		states := snap.Count(obs.CtrStatesChecked)
		if states == 0 {
			fatalIf(fmt.Errorf("no crash states checked"))
		}
		nsPerState := float64(elapsed.Nanoseconds()) / float64(states)
		if best.States != 0 && nsPerState >= best.NsPerState {
			continue
		}
		best.States = states
		best.NsPerState = nsPerState
		best.StatesPerSec = float64(states) / elapsed.Seconds()
		best.MatBytesPerState = float64(snap.Count(obs.CtrBytesMaterialized)) / float64(states)
		best.PrimeBytes = snap.Count(obs.CtrBytesPrimed)
		best.RolledBackBytes = snap.Count(obs.CtrBytesRolledBack)
		best.ImagePrimes = snap.Count(obs.CtrImagePrimes)
	}
	return best
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcore:", err)
		os.Exit(1)
	}
}
