// Command benchcore measures the engine's crash-image materialization cost
// and writes the numbers the perf acceptance gates read, as JSON:
//
//	benchcore -o BENCH_core.json            # full matrix, best-of-3
//	benchcore -rounds 1                     # CI smoke, print to stdout
//
// The matrix crosses {delta, full-copy} x {workers 1, 4} x {device 1x, 2x}
// on the exhaustive data-heavy workload BenchmarkEngineParallel uses. Each
// row carries ns/state, states/sec, and the per-state byte traffic taken
// from the obs materialization counters — under the delta path the bytes
// must track the workload's diff, not the device size.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/harness"
	"chipmunk/internal/obs"
	"chipmunk/internal/workload"
)

// Row is one cell of the measurement matrix.
type Row struct {
	Mode             string  `json:"mode"` // "delta" or "full-copy"
	Workers          int     `json:"workers"`
	DevSize          int64   `json:"dev_size"`
	States           int64   `json:"states"`
	NsPerState       float64 `json:"ns_per_state"`
	StatesPerSec     float64 `json:"states_per_sec"`
	MatBytesPerState float64 `json:"mat_bytes_per_state"`
	PrimeBytes       int64   `json:"prime_bytes"`
	RolledBackBytes  int64   `json:"rolled_back_bytes"`
	ImagePrimes      int64   `json:"image_primes"`
}

// Report is the BENCH_core.json document.
type Report struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	Rounds int    `json:"rounds"`
	FS     string `json:"fs"`
	Rows   []Row  `json:"rows"`
}

func main() {
	var (
		out    = flag.String("o", "", "write the JSON report here (default stdout)")
		rounds = flag.Int("rounds", 3, "runs per cell; the fastest is reported")
		fsName = flag.String("fs", "nova", "target file system")
	)
	flag.Parse()

	sys, err := harness.SystemByName(*fsName)
	fatalIf(err)
	w := workload.Workload{Name: "benchcore", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Off: 0, Size: 16384, Seed: 1},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
	}}

	rep := Report{Schema: "bench_core/v1", Go: runtime.Version(), Rounds: *rounds, FS: sys.Name}
	for _, fullCopy := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			for _, devSize := range []int64{core.DefaultDevSize, 2 * core.DefaultDevSize} {
				rep.Rows = append(rep.Rows, measure(sys, w, fullCopy, workers, devSize, *rounds))
			}
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	fatalIf(err)
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	fatalIf(os.WriteFile(*out, enc, 0o644))
	fmt.Printf("wrote %s (%d rows)\n", *out, len(rep.Rows))
}

func measure(sys harness.System, w workload.Workload, fullCopy bool, workers int, devSize int64, rounds int) Row {
	best := Row{Mode: "delta", Workers: workers, DevSize: devSize}
	if fullCopy {
		best.Mode = "full-copy"
	}
	for r := 0; r < rounds; r++ {
		col := obs.New()
		cfg := harness.Options{
			Bugs: bugs.None(), Cap: 0, Workers: workers,
			DisableDeltaMaterialize: fullCopy, Obs: col,
		}.ConfigFor(sys)
		cfg.DevSize = devSize
		start := time.Now()
		res, err := core.RunContext(context.Background(), cfg, w)
		elapsed := time.Since(start)
		fatalIf(err)
		if res.Buggy() {
			fatalIf(fmt.Errorf("benchcore workload violated on a fixed system"))
		}
		snap := col.Snapshot()
		states := snap.Count(obs.CtrStatesChecked)
		if states == 0 {
			fatalIf(fmt.Errorf("no crash states checked"))
		}
		nsPerState := float64(elapsed.Nanoseconds()) / float64(states)
		if best.States != 0 && nsPerState >= best.NsPerState {
			continue
		}
		best.States = states
		best.NsPerState = nsPerState
		best.StatesPerSec = float64(states) / elapsed.Seconds()
		best.MatBytesPerState = float64(snap.Count(obs.CtrBytesMaterialized)) / float64(states)
		best.PrimeBytes = snap.Count(obs.CtrBytesPrimed)
		best.RolledBackBytes = snap.Count(obs.CtrBytesRolledBack)
		best.ImagePrimes = snap.Count(obs.CtrImagePrimes)
	}
	return best
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcore:", err)
		os.Exit(1)
	}
}
