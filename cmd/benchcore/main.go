// Command benchcore measures the engine's crash-image materialization cost
// and writes the numbers the perf acceptance gates read, as JSON:
//
//	benchcore -o BENCH_core.json            # full matrix, best-of-3
//	benchcore -rounds 1                     # CI smoke, print to stdout
//	benchcore -check BENCH_core.json        # perf gate against a baseline
//
// The -check mode re-runs the matrix and compares the delta-path rows
// against the committed baseline. Raw ns/state is machine-dependent, so the
// gate first computes a calibration factor — the median ratio of current to
// baseline ns/state over the full-copy rows, whose cost is dominated by
// memcpy and tracks machine speed — and fails if the geometric mean of the
// delta rows' ns/state exceeds the calibrated baseline geomean by more than
// -tolerance. Individual cells run for only a few milliseconds and jitter
// past any sane tolerance, so the gate judges the aggregate; per-cell
// ratios are printed for diagnosis. The per-state byte counters are
// deterministic, so those ARE compared per cell, without calibration.
//
// The matrix crosses {delta, full-copy} x {workers 1, 4} x {device 1x, 2x}
// on the exhaustive data-heavy workload BenchmarkEngineParallel uses. Each
// row carries ns/state, states/sec, and the per-state byte traffic taken
// from the obs materialization counters — under the delta path the bytes
// must track the workload's diff, not the device size.
//
// The trajectory ledger keeps the perf history across PRs:
//
//	benchcore -record                       # append a dated row to BENCH_trajectory.jsonl
//	benchcore -check BENCH_core.json        # also reports vs the trajectory seed and best rows
//
// Each -record row carries the date, git SHA, and the geometric means of the
// delta rows' ns/state and states/sec. -cpuprofile/-memprofile write pprof
// profiles of the measurement matrix (see `make profile`).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/harness"
	"chipmunk/internal/obs"
	"chipmunk/internal/workload"
)

// Row is one cell of the measurement matrix.
type Row struct {
	Mode             string  `json:"mode"` // "delta" or "full-copy"
	Workers          int     `json:"workers"`
	DevSize          int64   `json:"dev_size"`
	States           int64   `json:"states"`
	NsPerState       float64 `json:"ns_per_state"`
	StatesPerSec     float64 `json:"states_per_sec"`
	MatBytesPerState float64 `json:"mat_bytes_per_state"`
	PrimeBytes       int64   `json:"prime_bytes"`
	RolledBackBytes  int64   `json:"rolled_back_bytes"`
	ImagePrimes      int64   `json:"image_primes"`
}

// Report is the BENCH_core.json document.
type Report struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	Rounds int    `json:"rounds"`
	FS     string `json:"fs"`
	Rows   []Row  `json:"rows"`
}

// TrajRow is one line of the BENCH_trajectory.jsonl ledger: a dated,
// SHA-attributed summary of the delta-path rows, appended by -record so the
// perf history survives baseline refreshes.
type TrajRow struct {
	Date            string  `json:"date"`
	SHA             string  `json:"sha"`
	Go              string  `json:"go"`
	FS              string  `json:"fs"`
	GeoNsPerState   float64 `json:"geomean_ns_per_state"`
	GeoStatesPerSec float64 `json:"geomean_states_per_sec"`
}

func main() {
	var (
		out        = flag.String("o", "", "write the JSON report here (default stdout)")
		rounds     = flag.Int("rounds", 3, "runs per cell; the fastest is reported")
		fsName     = flag.String("fs", "nova", "target file system")
		check      = flag.String("check", "", "baseline BENCH_core.json to gate against; exit 1 on regression")
		tolerance  = flag.Float64("tolerance", 0.15, "allowed fractional regression in -check mode")
		record     = flag.Bool("record", false, "append a dated delta-path summary row to the trajectory ledger")
		trajectory = flag.String("trajectory", "BENCH_trajectory.jsonl", "trajectory ledger path (-record appends, -check reports against it)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the measurement matrix here")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile (post-matrix) here")
	)
	flag.Parse()

	sys, err := harness.SystemByName(*fsName)
	fatalIf(err)
	w := workload.Workload{Name: "benchcore", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Off: 0, Size: 16384, Seed: 1},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
	}}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		fatalIf(err)
		fatalIf(pprof.StartCPUProfile(f))
	}
	rep := Report{Schema: "bench_core/v1", Go: runtime.Version(), Rounds: *rounds, FS: sys.Name}
	for _, fullCopy := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			for _, devSize := range []int64{core.DefaultDevSize, 2 * core.DefaultDevSize} {
				rep.Rows = append(rep.Rows, measure(sys, w, fullCopy, workers, devSize, *rounds))
			}
		}
	}
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
		fmt.Printf("wrote CPU profile %s\n", *cpuprofile)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		fatalIf(err)
		runtime.GC()
		fatalIf(pprof.WriteHeapProfile(f))
		fatalIf(f.Close())
		fmt.Printf("wrote heap profile %s\n", *memprofile)
	}

	if *check != "" {
		gateErr := gate(*check, rep, *tolerance)
		reportTrajectory(*trajectory, rep)
		fatalIf(gateErr)
		fmt.Printf("perf gate passed against %s (tolerance %.0f%%)\n", *check, *tolerance*100)
		return
	}

	if *record {
		row := TrajRow{
			Date: time.Now().UTC().Format("2006-01-02"),
			SHA:  gitSHA(),
			Go:   rep.Go,
			FS:   rep.FS,
		}
		row.GeoNsPerState, row.GeoStatesPerSec = deltaGeomeans(rep)
		fatalIf(appendTrajectory(*trajectory, row))
		fmt.Printf("recorded %s @ %s: geomean %.0f ns/state, %.0f states/sec -> %s\n",
			row.Date, row.SHA, row.GeoNsPerState, row.GeoStatesPerSec, *trajectory)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	fatalIf(err)
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	fatalIf(os.WriteFile(*out, enc, 0o644))
	fmt.Printf("wrote %s (%d rows)\n", *out, len(rep.Rows))
}

// deltaGeomeans summarizes the delta-path rows: geometric mean ns/state and
// states/sec.
func deltaGeomeans(rep Report) (ns, sps float64) {
	var logNs, logSps float64
	var n int
	for _, r := range rep.Rows {
		if r.Mode != "delta" || r.NsPerState <= 0 || r.StatesPerSec <= 0 {
			continue
		}
		logNs += math.Log(r.NsPerState)
		logSps += math.Log(r.StatesPerSec)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return math.Exp(logNs / float64(n)), math.Exp(logSps / float64(n))
}

// gitSHA best-effort resolves the working tree's short commit SHA.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// readTrajectory parses the JSONL ledger (missing file = empty history).
func readTrajectory(path string) ([]TrajRow, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	var rows []TrajRow
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r TrajRow
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		rows = append(rows, r)
	}
	return rows, sc.Err()
}

// appendTrajectory appends one JSONL row to the ledger.
func appendTrajectory(path string, row TrajRow) error {
	enc, err := json.Marshal(row)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(enc, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// reportTrajectory prints where the current run stands against the ledger's
// seed (first) and best-known rows. Informational only: raw ns/state is
// machine-dependent, so the hard gate stays with the calibrated baseline.
func reportTrajectory(path string, rep Report) {
	rows, err := readTrajectory(path)
	if err != nil || len(rows) == 0 {
		return
	}
	curNs, curSps := deltaGeomeans(rep)
	if curNs <= 0 {
		return
	}
	seed := rows[0]
	best := rows[0]
	for _, r := range rows[1:] {
		if r.GeoNsPerState > 0 && r.GeoNsPerState < best.GeoNsPerState {
			best = r
		}
	}
	fmt.Printf("trajectory (%s, %d rows, uncalibrated):\n", path, len(rows))
	fmt.Printf("  current    %8.0f ns/state %8.0f states/sec\n", curNs, curSps)
	if seed.GeoNsPerState > 0 {
		fmt.Printf("  seed  %s %8.0f ns/state (current x%.2f)\n", seed.SHA, seed.GeoNsPerState, curNs/seed.GeoNsPerState)
	}
	if best.GeoNsPerState > 0 {
		fmt.Printf("  best  %s %8.0f ns/state (current x%.2f)\n", best.SHA, best.GeoNsPerState, curNs/best.GeoNsPerState)
	}
}

// rowKey identifies a matrix cell across reports.
func rowKey(r Row) string { return fmt.Sprintf("%s/w%d/dev%d", r.Mode, r.Workers, r.DevSize) }

// gate compares the freshly measured report against a committed baseline
// and returns an error naming every regressed cell. Machine-speed skew is
// absorbed by calibrating with the median current/baseline ns ratio over
// the full-copy rows before judging the delta rows.
func gate(path string, cur Report, tol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if base.Schema != cur.Schema {
		return fmt.Errorf("baseline schema %q, want %q", base.Schema, cur.Schema)
	}
	byKey := make(map[string]Row, len(base.Rows))
	for _, r := range base.Rows {
		byKey[rowKey(r)] = r
	}

	var ratios []float64
	for _, r := range cur.Rows {
		b, ok := byKey[rowKey(r)]
		if r.Mode != "full-copy" || !ok || b.NsPerState <= 0 {
			continue
		}
		ratios = append(ratios, r.NsPerState/b.NsPerState)
	}
	if len(ratios) == 0 {
		return fmt.Errorf("baseline %s has no full-copy rows to calibrate against", path)
	}
	sort.Float64s(ratios)
	factor := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		factor = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	fmt.Printf("machine calibration factor %.3f (median of %d full-copy ratios)\n", factor, len(ratios))

	var failures []string
	var logSum float64
	var deltaRows int
	for _, r := range cur.Rows {
		b, ok := byKey[rowKey(r)]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from baseline", rowKey(r)))
			continue
		}
		if r.Mode == "delta" && b.NsPerState > 0 {
			ratio := r.NsPerState / (b.NsPerState * factor)
			logSum += math.Log(ratio)
			deltaRows++
			fmt.Printf("  %-24s %8.0f ns/state, calibrated baseline %8.0f (x%.2f)\n",
				rowKey(r), r.NsPerState, b.NsPerState*factor, ratio)
		}
		// The materialization byte counters are deterministic functions of
		// the workload, so compare them raw: growth here means the delta
		// path started copying more than the diff.
		if b.MatBytesPerState > 0 && r.MatBytesPerState > b.MatBytesPerState*(1+tol) {
			failures = append(failures, fmt.Sprintf("%s: %.0f materialized bytes/state > baseline %.0f (deterministic counter)",
				rowKey(r), r.MatBytesPerState, b.MatBytesPerState))
		}
	}
	if deltaRows == 0 {
		return fmt.Errorf("baseline %s has no delta rows to gate on", path)
	}
	geomean := math.Exp(logSum / float64(deltaRows))
	fmt.Printf("delta-path geomean x%.3f of calibrated baseline (tolerance x%.2f)\n", geomean, 1+tol)
	if geomean > 1+tol {
		failures = append(failures, fmt.Sprintf(
			"delta-path ns/state geomean is x%.3f of the calibrated baseline, over the x%.2f tolerance", geomean, 1+tol))
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func measure(sys harness.System, w workload.Workload, fullCopy bool, workers int, devSize int64, rounds int) Row {
	best := Row{Mode: "delta", Workers: workers, DevSize: devSize}
	if fullCopy {
		best.Mode = "full-copy"
	}
	for r := 0; r < rounds; r++ {
		col := obs.New()
		cfg := harness.Options{
			Bugs: bugs.None(), Cap: 0, Workers: workers,
			DisableDeltaMaterialize: fullCopy, Obs: col,
		}.ConfigFor(sys)
		cfg.DevSize = devSize
		start := time.Now()
		res, err := core.RunContext(context.Background(), cfg, w)
		elapsed := time.Since(start)
		fatalIf(err)
		if res.Buggy() {
			fatalIf(fmt.Errorf("benchcore workload violated on a fixed system"))
		}
		snap := col.Snapshot()
		states := snap.Count(obs.CtrStatesChecked)
		if states == 0 {
			fatalIf(fmt.Errorf("no crash states checked"))
		}
		nsPerState := float64(elapsed.Nanoseconds()) / float64(states)
		if best.States != 0 && nsPerState >= best.NsPerState {
			continue
		}
		best.States = states
		best.NsPerState = nsPerState
		best.StatesPerSec = float64(states) / elapsed.Seconds()
		best.MatBytesPerState = float64(snap.Count(obs.CtrBytesMaterialized)) / float64(states)
		best.PrimeBytes = snap.Count(obs.CtrBytesPrimed)
		best.RolledBackBytes = snap.Count(obs.CtrBytesRolledBack)
		best.ImagePrimes = snap.Count(obs.CtrImagePrimes)
	}
	return best
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcore:", err)
		os.Exit(1)
	}
}
