// fuzzing: a gray-box fuzzing session against SplitFS.
//
// Two of the paper's 23 bugs (Table 1 bugs 22 and 23, both in SplitFS) need
// a workload that opens TWO file descriptors on the same file and writes
// through both — a pattern the systematic ACE generator never produces
// (§4.3). This example fuzzes SplitFS as published and shows the triaged
// bug-report clusters, including the two-descriptor data-loss bugs.
//
// Run with: go run ./examples/fuzzing
package main

import (
	"fmt"
	"log"
	"time"

	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/fs/splitfs"
	"chipmunk/internal/fuzz"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
)

func main() {
	fmt.Println("== Fuzzing SplitFS (as published) ==")
	set := bugs.Of(bugs.SplitfsStagePerFD, bugs.SplitfsRelinkSkip,
		bugs.SplitfsOplogUnfenced, bugs.SplitfsTailBeforeCsum, bugs.SplitfsRenameOldSurvives)
	cfg := core.Config{
		NewFS: func(pm *persist.PM) vfs.FS { return splitfs.New(pm, set) },
		Cap:   2, // the paper's fuzzing cap (§4.2)
	}
	fz := fuzz.New(cfg, 7, nil)

	start := time.Now()
	const budget = 600
	for i := 0; i < budget; i++ {
		if _, _, err := fz.Step(); err != nil {
			log.Fatal(err)
		}
		if (i+1)%150 == 0 {
			fmt.Printf("  %4d execs | corpus %3d | trace-coverage %4d | clusters so far: %d\n",
				i+1, fz.CorpusSize(), fz.CoverageSize(), len(fz.Clusters))
		}
	}
	fmt.Printf("\n%d executions, %d crash states in %v\n",
		fz.Execs, fz.StatesChecked, time.Since(start).Round(time.Millisecond))
	fmt.Printf("%d raw reports triaged into %d clusters:\n", len(fz.Violations), len(fz.Clusters))
	for i, c := range fz.Clusters {
		fmt.Printf("\n--- cluster %d (%d reports) ---\n%s\n", i+1, c.Count, c.Representative)
	}
}
