// Quickstart: reproduce Figure 2 of the paper.
//
// The workload renames a file on NOVA as published (bug 4 injected: the
// same-directory rename invalidates the old directory entry in place before
// the journal transaction commits). Chipmunk simulates a crash after only
// that first write persists and discovers a state where the file exists
// under NEITHER name. The same workload on fixed NOVA is clean.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/fs/nova"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

func main() {
	// The Figure 2 workload: create a file, give it content, rename it.
	w := workload.Workload{Name: "figure-2", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/old", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/old", FDSlot: -1, Off: 0, Size: 64, Seed: 7},
		{Kind: workload.OpRename, Path: "/old", Path2: "/new"},
	}}

	fmt.Println("== Chipmunk quickstart: the Figure 2 rename bug ==")
	fmt.Printf("workload: %s\n\n", w)

	// 1. NOVA as published (Table 1 bug 4 present).
	buggy := core.Config{NewFS: func(pm *persist.PM) vfs.FS {
		return nova.New(pm, bugs.Of(bugs.NovaRenameInPlaceDelete))
	}}
	res, err := core.RunContext(context.Background(), buggy, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NOVA as published: %d crash states checked, %d violations\n",
		res.StatesChecked, len(res.Violations))
	if len(res.Violations) > 0 {
		fmt.Printf("\nbug report:\n%s\n\n", res.Violations[0])
	}

	// 2. NOVA with the developers' fix (the rename fully journalled).
	fixed := core.Config{NewFS: func(pm *persist.PM) vfs.FS {
		return nova.New(pm, bugs.None())
	}}
	res2, err := core.RunContext(context.Background(), fixed, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NOVA with the fix:  %d crash states checked, %d violations\n",
		res2.StatesChecked, len(res2.Violations))
	if len(res2.Violations) == 0 {
		fmt.Println("\nevery crash state recovered to a legal pre- or post-rename state.")
	}
}
