// fsdev: the "developer loop" from the paper's Lesson 3.
//
// Chipmunk's ACE seq-1 suite runs in seconds and is meant to be part of a
// PM file-system developer's edit-compile-test cycle. This example plays a
// WineFS developer who has just written the per-CPU journal recovery code:
// the seq-1 suite is run against the build with Table 1's WineFS bugs
// present, and again after fixing them.
//
// Run with: go run ./examples/fsdev
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"chipmunk/internal/ace"
	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/fs/winefs"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
)

func runSuite(label string, set bugs.Set) int {
	cfg := core.Config{NewFS: func(pm *persist.PM) vfs.FS {
		return winefs.New(pm, set)
	}}
	start := time.Now()
	suite := ace.Seq1()
	var states int
	var firstBug *core.Violation
	buggyWorkloads := 0
	for _, w := range suite {
		res, err := core.RunContext(context.Background(), cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		states += res.StatesChecked
		if res.Buggy() {
			buggyWorkloads++
			if firstBug == nil {
				v := res.Violations[0]
				firstBug = &v
			}
		}
	}
	fmt.Printf("%-28s %3d workloads, %5d crash states, %8v: %d buggy workloads\n",
		label, len(suite), states, time.Since(start).Round(time.Millisecond), buggyWorkloads)
	if firstBug != nil {
		fmt.Printf("\n  first report:\n  %s\n\n", firstBug)
	}
	return buggyWorkloads
}

func main() {
	fmt.Println("== WineFS developer loop: ACE seq-1 before and after bug fixes ==")
	fmt.Println("(the paper runs this suite in <15 minutes on a VM; the simulated")
	fmt.Println(" stack finishes in seconds, which is the point of Lesson 3)")
	fmt.Println()

	// The build with the WineFS bugs of Table 1 (19 = per-CPU journal
	// recovery, 14&15 = missing data fence).
	before := runSuite("winefs (bugs 14,19):", bugs.Of(bugs.WriteNotSync, bugs.WinefsJournalIndex))
	after := runSuite("winefs (fixed):", bugs.None())

	if before > 0 && after == 0 {
		fmt.Println("fixes verified: the suite is clean.")
	}
}
