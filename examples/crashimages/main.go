// crashimages: a low-level tour of Chipmunk's record-and-replay machinery.
//
// Instead of using the engine, this example drives the pieces by hand —
// the way §3.3 describes them: record a workload's persistence-function
// trace through the probe interface, walk the log to a store fence, build
// crash states from subsets of the in-flight writes, and mount the file
// system on each one to see what recovery produces.
//
// Run with: go run ./examples/crashimages
package main

import (
	"fmt"
	"log"

	"chipmunk/internal/bugs"
	"chipmunk/internal/fs/nova"
	"chipmunk/internal/persist"
	"chipmunk/internal/pmem"
	"chipmunk/internal/trace"
	"chipmunk/internal/vfs"
)

func main() {
	// A NOVA instance with the rename bug, on a recorded device.
	dev := pmem.NewDevice(1 << 20)
	pm := persist.New(dev)
	fs := nova.New(pm, bugs.Of(bugs.NovaRenameInPlaceDelete))
	if err := fs.Mkfs(); err != nil {
		log.Fatal(err)
	}
	baseline := dev.CrashImage()

	// Attach the recorder — the Kprobes analogue (§3.3 "Logging writes").
	logW := trace.NewLog()
	pm.Attach(persist.NewRecorder(logW))

	// Run the workload with syscall markers.
	call := func(i int, name string, fn func() error) {
		logW.BeginSyscall(i, name)
		if err := fn(); err != nil {
			log.Fatal(err)
		}
		logW.EndSyscall(i, name)
	}
	call(0, "creat(/old)", func() error {
		fd, err := fs.Create("/old")
		if err != nil {
			return err
		}
		if _, err := fs.Pwrite(fd, []byte("precious data"), 0); err != nil {
			return err
		}
		return fs.Close(fd)
	})
	call(1, "rename(/old, /new)", func() error { return fs.Rename("/old", "/new") })

	fmt.Printf("recorded %d trace entries over %d system calls\n\n", logW.Len(), logW.SyscallCount())

	// Replay: walk to each fence inside the rename and enumerate states.
	img := append([]byte(nil), baseline...)
	var pending []int
	fence := 0
	for _, e := range logW.Entries() {
		switch e.Kind {
		case trace.KindNT, trace.KindFlush:
			pending = append(pending, e.Seq)
		case trace.KindFence:
			fence++
			if e.Sys == 1 && len(pending) > 0 { // inside the rename
				fmt.Printf("fence #%d inside rename: %d in-flight write(s)\n", fence, len(pending))
				for _, idx := range pending {
					inspect(img, logW, []int{idx})
				}
			}
			for _, idx := range pending {
				trace.Apply(img, logW.At(idx))
			}
			pending = pending[:0]
		}
	}
}

// inspect builds one crash state (base image + chosen writes), mounts the
// file system on it, and reports which names survived recovery.
func inspect(base []byte, logW *trace.Log, subset []int) {
	img := append([]byte(nil), base...)
	for _, idx := range subset {
		trace.Apply(img, logW.At(idx))
	}
	fs := nova.New(persist.New(pmem.FromImage(img)), bugs.Of(bugs.NovaRenameInPlaceDelete))
	if err := fs.Mount(); err != nil {
		fmt.Printf("  subset %v -> UNMOUNTABLE: %v\n", subset, err)
		return
	}
	_, errOld := fs.Stat("/old")
	_, errNew := fs.Stat("/new")
	has := func(err error) string {
		if err == nil {
			return "present"
		}
		return "absent"
	}
	verdict := ""
	if errOld != nil && errNew != nil {
		verdict = "   <-- the Figure 2 bug: the file is GONE"
	}
	fmt.Printf("  subset %v -> /old %s, /new %s%s\n", subset, has(errOld), has(errNew), verdict)
	_ = vfs.TypeRegular
}
