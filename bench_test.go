// Package chipmunk's root benchmark harness regenerates the measurable
// artifacts of the paper's evaluation (see DESIGN.md's experiment index):
// Table 1 (bug detection), Figure 3 (ACE vs fuzzer discovery cost), the
// §4.3 suite runtimes, Observation 2's fix overheads, Observation 7's
// replay-cap sweep, and the §3.2/§6.2 tracing ablations. Custom metrics
// carry the paper-comparable numbers (bugs found, crash states, simulated
// nanoseconds); wall-clock ns/op carries the framework cost.
package chipmunk_test

import (
	"context"
	"testing"

	"chipmunk/internal/ace"
	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/fs/nova"
	"chipmunk/internal/fuzz"
	"chipmunk/internal/harness"
	"chipmunk/internal/obs"
	"chipmunk/internal/persist"
	"chipmunk/internal/pmem"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

// BenchmarkTable1_AllBugs regenerates Table 1: every unique bug detected by
// the generic checker on its targeted workloads.
func BenchmarkTable1_AllBugs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunTable1(harness.DetectOptions{})
		if err != nil {
			b.Fatal(err)
		}
		found := 0
		states := 0
		for _, r := range rows {
			if r.Detection.Found {
				found++
			}
			states += r.Detection.StatesChecked
		}
		b.ReportMetric(float64(found), "bugs-found")
		b.ReportMetric(float64(states), "crash-states")
		if found != 23 {
			b.Fatalf("found %d/23 bugs", found)
		}
	}
}

// BenchmarkFig3_ACEDiscovery measures the systematic generator's cost to
// find a representative bug (Figure 3's fast ACE curve): NOVA bug 4 via an
// in-order ACE scan.
func BenchmarkFig3_ACEDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		det, err := harness.DetectWithACE(bugs.NovaRenameInPlaceDelete, 600, harness.DetectOptions{Cap: 2})
		if err != nil {
			b.Fatal(err)
		}
		if !det.Found {
			b.Fatal("ACE did not find bug 4")
		}
		b.ReportMetric(float64(det.Workloads), "workloads-to-bug")
		b.ReportMetric(float64(det.StatesChecked), "crash-states")
	}
}

// BenchmarkFig3_FuzzerDiscovery measures the fuzzer's cost for the same bug
// (Figure 3's slower but more general curve).
func BenchmarkFig3_FuzzerDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		det, err := harness.DetectWithFuzzer(bugs.NovaRenameInPlaceDelete, int64(i)+100, 3000)
		if err != nil {
			b.Fatal(err)
		}
		if !det.Found {
			b.Fatal("fuzzer did not find bug 4 in budget")
		}
		b.ReportMetric(float64(det.Workloads), "execs-to-bug")
		b.ReportMetric(float64(det.StatesChecked), "crash-states")
	}
}

// BenchmarkFig3_FuzzerOnlyBug measures discovery of an ACE-unreachable bug
// (the four bugs the paper's fuzzer alone found, §4.3).
func BenchmarkFig3_FuzzerOnlyBug(b *testing.B) {
	for i := 0; i < b.N; i++ {
		det, err := harness.DetectWithFuzzer(bugs.NTTailNotFenced, int64(i)+7, 3000)
		if err != nil {
			b.Fatal(err)
		}
		if !det.Found {
			b.Fatal("fuzzer did not find bug 17 in budget")
		}
		b.ReportMetric(float64(det.Workloads), "execs-to-bug")
	}
}

// BenchmarkSeq1Suite_* is the §4.3 runtime table: the full ACE seq-1 suite
// against each fixed strong system (paper: under 15 minutes per system on a
// VM; the simulated stack runs it in seconds).
func benchSeq1(b *testing.B, sysName string) {
	sys, err := harness.SystemByName(sysName)
	if err != nil {
		b.Fatal(err)
	}
	suite := ace.Seq1()
	for i := 0; i < b.N; i++ {
		cfg := harness.Options{Bugs: bugs.None(), Cap: 2}.ConfigFor(sys)
		c, viol, err := harness.Run(context.Background(), cfg, suite)
		if err != nil {
			b.Fatal(err)
		}
		if len(viol) != 0 {
			b.Fatalf("false positives: %d", len(viol))
		}
		b.ReportMetric(float64(c.StatesChecked), "crash-states")
	}
}

func BenchmarkSeq1Suite_Nova(b *testing.B)       { benchSeq1(b, "nova") }
func BenchmarkSeq1Suite_NovaFortis(b *testing.B) { benchSeq1(b, "nova-fortis") }
func BenchmarkSeq1Suite_Pmfs(b *testing.B)       { benchSeq1(b, "pmfs") }
func BenchmarkSeq1Suite_Winefs(b *testing.B)     { benchSeq1(b, "winefs") }
func BenchmarkSeq1Suite_Splitfs(b *testing.B)    { benchSeq1(b, "splitfs") }
func BenchmarkSeq1Suite_Ext4Dax(b *testing.B) {
	sys, _ := harness.SystemByName("ext4-dax")
	suite := ace.Seq1Dax()
	for i := 0; i < b.N; i++ {
		cfg := harness.Options{Bugs: bugs.None(), Cap: 2}.ConfigFor(sys)
		c, viol, err := harness.Run(context.Background(), cfg, suite)
		if err != nil {
			b.Fatal(err)
		}
		if len(viol) != 0 {
			b.Fatalf("false positives: %d", len(viol))
		}
		b.ReportMetric(float64(c.StatesChecked), "crash-states")
	}
}

// BenchmarkObs2_RenameFix regenerates Observation 2's rename
// microbenchmark: NOVA before vs after fixing bugs 4 and 5 (paper: the fix
// costs 25% on an Optane rename loop). The simulated-PM nanoseconds carry
// the comparison.
func BenchmarkObs2_RenameFix(b *testing.B) {
	run := func(b *testing.B, set bugs.Set) {
		dev := pmem.NewDevice(4 << 20)
		f := nova.New(persist.New(dev), set)
		if err := f.Mkfs(); err != nil {
			b.Fatal(err)
		}
		fd, _ := f.Create("/target")
		f.Pwrite(fd, []byte("content"), 0)
		f.Close(fd)
		dev.ResetStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fd, _ := f.Create("/tmp")
			f.Pwrite(fd, []byte("new content"), 0)
			f.Close(fd)
			if err := f.Rename("/tmp", "/target"); err != nil {
				b.Fatal(err)
			}
		}
		// The paper-comparable numbers come from the obs snapshot: the
		// device's cost model feeds the collector, and the benchmark reads
		// the merged PM counters back instead of poking Stats directly.
		col := obs.New()
		dev.Stats().Feed(col)
		snap := col.Snapshot()
		b.ReportMetric(float64(snap.PM.SimNanos)/float64(b.N), "sim-ns/op")
		b.ReportMetric(float64(snap.PM.Fences)/float64(b.N), "fences/op")
	}
	b.Run("published", func(b *testing.B) {
		run(b, bugs.Of(bugs.NovaRenameInPlaceDelete, bugs.NovaRenameOldSurvives))
	})
	b.Run("fixed", func(b *testing.B) { run(b, bugs.None()) })
}

// BenchmarkObs2_LinkFix regenerates the link microbenchmark (paper: the fix
// is 7% FASTER because the in-place path re-read the log from media).
func BenchmarkObs2_LinkFix(b *testing.B) {
	run := func(b *testing.B, set bugs.Set) {
		dev := pmem.NewDevice(4 << 20)
		f := nova.New(persist.New(dev), set)
		if err := f.Mkfs(); err != nil {
			b.Fatal(err)
		}
		fd, _ := f.Create("/target")
		f.Pwrite(fd, []byte("linked file content"), 0)
		f.Close(fd)
		dev.ResetStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := f.Link("/target", "/l"); err != nil {
				b.Fatal(err)
			}
			if err := f.Unlink("/l"); err != nil {
				b.Fatal(err)
			}
		}
		col := obs.New()
		dev.Stats().Feed(col)
		b.ReportMetric(float64(col.Snapshot().PM.SimNanos)/float64(b.N), "sim-ns/op")
	}
	b.Run("published", func(b *testing.B) { run(b, bugs.Of(bugs.NovaLinkCountEarly)) })
	b.Run("fixed", func(b *testing.B) { run(b, bugs.None()) })
}

// BenchmarkObs7_CapSweep regenerates Observation 7: the crash-state count
// and detection power at replay caps 1, 2, 5, and exhaustive.
func BenchmarkObs7_CapSweep(b *testing.B) {
	w := workload.Workload{Name: "cap-sweep", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Off: 0, Size: 16384, Seed: 1},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
	}}
	for _, tc := range []struct {
		name string
		cap  int
	}{{"cap1", 1}, {"cap2", 2}, {"cap5", 5}, {"exhaustive", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := core.Config{
				NewFS: func(pm *persist.PM) vfs.FS {
					return nova.New(pm, bugs.Of(bugs.NovaRenameInPlaceDelete))
				},
				Cap: tc.cap,
			}
			for i := 0; i < b.N; i++ {
				res, err := core.RunContext(context.Background(), cfg, w)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Buggy() {
					b.Fatal("bug 4 not found")
				}
				b.ReportMetric(float64(res.StatesChecked), "crash-states")
			}
		})
	}
}

// BenchmarkAblation_PerStoreTracing is the §6.2 comparison in miniature:
// function-level interception (Chipmunk) vs recording every store
// (Yat/Vinter-style). The metric of interest is trace events per workload.
func BenchmarkAblation_PerStoreTracing(b *testing.B) {
	w := workload.Workload{Name: "trace-ablation", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Off: 0, Size: 4096, Seed: 1},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
	}}
	for _, tc := range []struct {
		name  string
		store bool
	}{{"function-level", false}, {"per-store", true}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := core.Config{
				NewFS:       func(pm *persist.PM) vfs.FS { return nova.New(pm, bugs.None()) },
				TraceStores: tc.store,
			}
			for i := 0; i < b.N; i++ {
				res, err := core.RunContext(context.Background(), cfg, w)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.StoreEntries), "store-events")
				b.ReportMetric(float64(res.Fences), "fences")
			}
		})
	}
}

// BenchmarkAblation_UndoLogVsCopy compares the paper's undo-log approach to
// checker-state restoration against whole-image copying (§3.3: Chipmunk
// rolls back checker mutations with an undo log because its images are
// 128 MB; ours are small enough that copying competes).
func BenchmarkAblation_UndoLogVsCopy(b *testing.B) {
	const imgSize = 1 << 20
	img := make([]byte, imgSize)
	b.Run("undo-log", func(b *testing.B) {
		td := pmem.NewTrackingDevice(img)
		buf := []byte("mutation")
		for i := 0; i < b.N; i++ {
			for off := int64(0); off < 64*1024; off += 4096 {
				td.Store(off, buf)
			}
			td.Rollback()
		}
	})
	b.Run("full-copy", func(b *testing.B) {
		buf := []byte("mutation")
		for i := 0; i < b.N; i++ {
			cp := append([]byte(nil), img...)
			dev := pmem.FromImage(cp)
			for off := int64(0); off < 64*1024; off += 4096 {
				dev.Store(off, buf)
			}
		}
	})
}

// BenchmarkAblation_CheckPhases isolates the cost of the checker's phases:
// full checks vs. skipping the usability probes (which mount-mutate every
// crash state) vs. post-only crash points (the disk-era policy).
func BenchmarkAblation_CheckPhases(b *testing.B) {
	w := workload.Workload{Name: "phases", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Off: 0, Size: 1024, Seed: 1},
		{Kind: workload.OpMkdir, Path: "/d0"},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/d0/f1"},
	}}
	for _, tc := range []struct {
		name string
		cfg  core.Config
	}{
		{"full", core.Config{}},
		{"no-usability", core.Config{SkipUsability: true}},
		{"post-only", core.Config{PostOnly: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := tc.cfg
			cfg.NewFS = func(pm *persist.PM) vfs.FS { return nova.New(pm, bugs.None()) }
			for i := 0; i < b.N; i++ {
				res, err := core.RunContext(context.Background(), cfg, w)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.StatesChecked), "crash-states")
			}
		})
	}
}

// BenchmarkAblation_VinterReadFilter measures the Vinter-style
// recovery-read-set heuristic (§6.2): crash states and filtered writes with
// the heuristic on and off, on a data-heavy workload where it matters.
func BenchmarkAblation_VinterReadFilter(b *testing.B) {
	w := workload.Workload{Name: "vinter", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Off: 0, Size: 12288, Seed: 1},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
		{Kind: workload.OpTruncate, Path: "/f1", Size: 100},
	}}
	for _, tc := range []struct {
		name   string
		filter bool
	}{{"unfiltered", false}, {"read-set-filter", true}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := core.Config{
				NewFS:        func(pm *persist.PM) vfs.FS { return nova.New(pm, bugs.None()) },
				VinterFilter: tc.filter,
			}
			for i := 0; i < b.N; i++ {
				res, err := core.RunContext(context.Background(), cfg, w)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.StatesChecked), "crash-states")
				b.ReportMetric(float64(res.FilteredWrites), "filtered-writes")
			}
		})
	}
}

// BenchmarkEngineThroughput measures raw crash-state checking speed, the
// number the §4.3 runtimes scale with.
func BenchmarkEngineThroughput(b *testing.B) {
	w := workload.Workload{Name: "throughput", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Off: 0, Size: 1024, Seed: 1},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
	}}
	col := obs.New()
	cfg := core.Config{
		NewFS: func(pm *persist.PM) vfs.FS { return nova.New(pm, bugs.None()) },
		Obs:   col,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunContext(context.Background(), cfg, w); err != nil {
			b.Fatal(err)
		}
	}
	snap := col.Snapshot()
	b.ReportMetric(float64(snap.Count(obs.CtrStatesChecked))/b.Elapsed().Seconds(), "states/sec")
	b.ReportMetric(float64(snap.Count(obs.CtrFences))/float64(b.N), "fences/op")
}

// BenchmarkEngineParallel measures the in-workload crash-state worker pool
// on an exhaustive (cap=0) data-heavy workload — the seq-2-shaped case whose
// fences carry the largest in-flight sets. serial and workers-4 check the
// exact same states (the differential test asserts identical Results); the
// wall-clock ratio is the parallel speedup.
func BenchmarkEngineParallel(b *testing.B) {
	w := workload.Workload{Name: "parallel", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Off: 0, Size: 16384, Seed: 1},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
	}}
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"workers-4", 4}} {
		b.Run(tc.name, func(b *testing.B) {
			col := obs.New()
			cfg := core.Config{
				NewFS:   func(pm *persist.PM) vfs.FS { return nova.New(pm, bugs.None()) },
				Cap:     0,
				Workers: tc.workers,
				Obs:     col,
			}
			for i := 0; i < b.N; i++ {
				res, err := core.RunContext(context.Background(), cfg, w)
				if err != nil {
					b.Fatal(err)
				}
				if res.Buggy() {
					b.Fatalf("false positives: %d", len(res.Violations))
				}
			}
			snap := col.Snapshot()
			b.ReportMetric(float64(snap.Count(obs.CtrStatesChecked))/float64(b.N), "crash-states")
			b.ReportMetric(float64(snap.Count(obs.CtrDedupHits))/float64(b.N), "states-deduped")
		})
	}
}

// BenchmarkMaterializeState measures per-crash-state cost under the O(diff)
// delta materialization path against the full-copy engine on the same
// exhaustive data-heavy workload as BenchmarkEngineParallel. Headline
// metrics: ns/state, states/sec, and (delta only) mat-bytes/state — bytes
// copied to build each crash image. The latter is a property of the
// workload's diff, not the device: the benchmark re-runs the workload on a
// 2x device untimed and fails if per-state copied bytes move more than 10%.
func BenchmarkMaterializeState(b *testing.B) {
	w := workload.Workload{Name: "materialize", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Off: 0, Size: 16384, Seed: 1},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
	}}
	copiedPerState := func(devSize int64) float64 {
		col := obs.New()
		cfg := core.Config{
			NewFS:   func(pm *persist.PM) vfs.FS { return nova.New(pm, bugs.None()) },
			Cap:     0,
			DevSize: devSize,
			Obs:     col,
		}
		if _, err := core.RunContext(context.Background(), cfg, w); err != nil {
			b.Fatal(err)
		}
		snap := col.Snapshot()
		copied := snap.Count(obs.CtrBytesMaterialized) + snap.Count(obs.CtrBytesRolledBack)
		return float64(copied) / float64(snap.Count(obs.CtrStatesChecked))
	}
	for _, tc := range []struct {
		name     string
		fullCopy bool
	}{{"delta", false}, {"full-copy", true}} {
		b.Run(tc.name, func(b *testing.B) {
			col := obs.New()
			cfg := core.Config{
				NewFS:                   func(pm *persist.PM) vfs.FS { return nova.New(pm, bugs.None()) },
				Cap:                     0,
				Obs:                     col,
				DisableDeltaMaterialize: tc.fullCopy,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunContext(context.Background(), cfg, w); err != nil {
					b.Fatal(err)
				}
			}
			snap := col.Snapshot()
			states := float64(snap.Count(obs.CtrStatesChecked))
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/states, "ns/state")
			b.ReportMetric(states/b.Elapsed().Seconds(), "states/sec")
			if !tc.fullCopy {
				b.ReportMetric(float64(snap.Count(obs.CtrBytesMaterialized))/states, "mat-bytes/state")
			}
		})
	}
	small := copiedPerState(core.DefaultDevSize)
	large := copiedPerState(2 * core.DefaultDevSize)
	if small == 0 {
		b.Fatal("no bytes copied per state; counters disconnected")
	}
	if large > small*1.1 || small > large*1.1 {
		b.Fatalf("copied bytes per state moved with device size: 1x=%.0f 2x=%.0f", small, large)
	}
}

// BenchmarkObsOverhead quantifies what the observability hooks cost the
// engine's hot path. "off" leaves Config.Obs nil — every hook is a
// nil-receiver no-op and the engine never reads the clock — and must match
// BenchmarkEngineParallel/serial to within noise (<1%); "on" attaches a
// collector and pays the clock reads and atomic adds. The zero-allocation
// claim for the disabled path is asserted exactly by TestDisabledSinkAllocs
// in internal/obs.
func BenchmarkObsOverhead(b *testing.B) {
	w := workload.Workload{Name: "obs-overhead", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Off: 0, Size: 16384, Seed: 1},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
	}}
	for _, tc := range []struct {
		name    string
		enabled bool
	}{{"off", false}, {"on", true}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := core.Config{
				NewFS: func(pm *persist.PM) vfs.FS { return nova.New(pm, bugs.None()) },
				Cap:   0,
			}
			if tc.enabled {
				cfg.Obs = obs.New()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunContext(context.Background(), cfg, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFuzzerThroughput measures fuzzing executions per second,
// comparable to the paper's 270-CPU-hour campaigns in rate terms.
func BenchmarkFuzzerThroughput(b *testing.B) {
	cfg := core.Config{
		NewFS: func(pm *persist.PM) vfs.FS { return nova.New(pm, bugs.None()) },
		Cap:   2,
		Obs:   obs.New(),
	}
	fz := fuzz.New(cfg, 1, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fz.Step(); err != nil {
			b.Fatal(err)
		}
	}
	// The campaign totals come back through the fuzzer's merged snapshot.
	b.ReportMetric(float64(fz.ObsTotals.Count(obs.CtrStatesChecked))/b.Elapsed().Seconds(), "states/sec")
}
